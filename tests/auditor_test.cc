// Corruption-injection tests for the invariant auditor: each test seeds a
// specific violation (time warp, bad replica map, broken queue lifecycle,
// orphaned NVRAM record) and asserts the auditor fires with a message naming
// the operands — proving the tripwire actually trips, not just that clean
// runs stay clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/auditor.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

// Records violations instead of aborting, so a test can seed corruption and
// keep running to inspect what the auditor said.
class RecordingAuditor {
 public:
  RecordingAuditor() {
    auditor_.set_failure_handler(
        [this](const std::string& message) { messages_.push_back(message); });
  }

  InvariantAuditor& auditor() { return auditor_; }
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  InvariantAuditor auditor_;
  std::vector<std::string> messages_;
};

DiskOpAudit MakeCleanOp() {
  DiskOpAudit op;
  op.disk = 0;
  op.lba = 100;
  op.sectors = 8;
  op.start_us = SimTime(1'000);
  op.completion_us = SimTime(1'000 + 5'000);
  op.overhead_us = 500.0;
  op.seek_us = 2'000.0;
  op.rotational_us = 1'500.0;
  op.transfer_us = 1'000.0;
  op.head_cylinder = 10;
  op.head_index = 1;
  op.num_cylinders = 100;
  op.num_heads = 4;
  op.spindle_phase_us = 123.0;
  op.rotation_us = 6'000.0;
  return op;
}

AuditFragment MakeFragment(uint64_t logical_lba, uint32_t sectors,
                           std::vector<AuditReplicaRef> replicas) {
  AuditFragment frag;
  frag.logical_lba = logical_lba;
  frag.sectors = sectors;
  frag.replicas = std::move(replicas);
  return frag;
}

// --- Event-time monotonicity ---

TEST(AuditorTest, CleanEventStreamPasses) {
  RecordingAuditor rec;
  rec.auditor().OnEventScheduled(SimTime(0), SimTime(50));
  rec.auditor().OnEventFired(SimTime(0), SimTime(50));
  rec.auditor().OnEventScheduled(SimTime(50), SimTime(50));  // same-time scheduling is legal
  EXPECT_EQ(rec.auditor().violations(), 0u);
  EXPECT_GT(rec.auditor().checks_run(), 0u);
}

TEST(AuditorTest, CatchesEventScheduledInThePast) {
  RecordingAuditor rec;
  rec.auditor().OnEventScheduled(/*now=*/SimTime(100), /*at=*/SimTime(99));
  ASSERT_EQ(rec.auditor().violations(), 1u);
  EXPECT_NE(rec.auditor().last_violation().find("99"), std::string::npos);
  EXPECT_NE(rec.auditor().last_violation().find("100"), std::string::npos);
}

TEST(AuditorTest, CatchesClockRunningBackwards) {
  RecordingAuditor rec;
  rec.auditor().OnEventFired(/*now_before=*/SimTime(200), /*at=*/SimTime(150));
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

// The end-to-end version: corrupt a live Simulator's clock and show the
// attached auditor flags the stale event when it fires.
TEST(AuditorTest, CatchesCorruptedSimulatorClock) {
  RecordingAuditor rec;
  Simulator sim;
  sim.set_auditor(&rec.auditor());
  sim.ScheduleAt(SimTime(10), [] {});
  sim.CorruptClockForTest(SimTime(500));  // warp past the pending event
  ASSERT_TRUE(sim.Step());      // fires the t=10 event at now=500
  EXPECT_EQ(rec.auditor().violations(), 1u);
  EXPECT_NE(rec.auditor().last_violation().find("clock already reads"),
            std::string::npos);
}

TEST(AuditorTest, CatchesSchedulingIntoCorruptedPast) {
  RecordingAuditor rec;
  Simulator sim;
  sim.set_auditor(&rec.auditor());
  sim.CorruptClockForTest(SimTime(1'000));
  sim.ScheduleAt(SimTime(10), [] {});
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

// --- Disk physical consistency ---

TEST(AuditorTest, CleanDiskOpPasses) {
  RecordingAuditor rec;
  rec.auditor().OnDiskOpComplete(MakeCleanOp());
  rec.auditor().OnDiskOpComplete([] {
    DiskOpAudit next = MakeCleanOp();
    next.start_us = SimTime(7'000);
    next.completion_us = SimTime(12'000);
    return next;
  }());
  EXPECT_EQ(rec.auditor().violations(), 0u);
}

TEST(AuditorTest, CatchesSpindlePhaseDrift) {
  RecordingAuditor rec;
  rec.auditor().OnDiskOpComplete(MakeCleanOp());
  DiskOpAudit drifted = MakeCleanOp();
  drifted.start_us = SimTime(7'000);
  drifted.completion_us = SimTime(12'000);
  drifted.spindle_phase_us = 456.0;  // a physical constant changed
  rec.auditor().OnDiskOpComplete(drifted);
  ASSERT_EQ(rec.auditor().violations(), 1u);
  EXPECT_NE(rec.auditor().last_violation().find("spindle phase"),
            std::string::npos);
}

TEST(AuditorTest, CatchesHeadParkedOutsideGeometry) {
  RecordingAuditor rec;
  DiskOpAudit op = MakeCleanOp();
  op.head_cylinder = op.num_cylinders;  // one past the last cylinder
  rec.auditor().OnDiskOpComplete(op);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesOverlappingOpsOnOneSpindle) {
  RecordingAuditor rec;
  rec.auditor().OnDiskOpComplete(MakeCleanOp());
  DiskOpAudit overlapping = MakeCleanOp();
  overlapping.start_us = SimTime(5'500);  // first op completes at 6'000
  overlapping.completion_us = SimTime(10'500);
  rec.auditor().OnDiskOpComplete(overlapping);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesServiceDecompositionMismatch) {
  RecordingAuditor rec;
  DiskOpAudit op = MakeCleanOp();
  op.transfer_us += 500.0;  // components no longer sum to the service time
  rec.auditor().OnDiskOpComplete(op);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

// --- Scheduler picks ---

TEST(AuditorTest, CatchesPickIndexOutsideQueue) {
  RecordingAuditor rec;
  rec.auditor().OnSchedulerPick("RSATF", /*queue_size=*/3, /*picked_index=*/3,
                                /*chosen_lba=*/BlockAddr(42), {BlockAddr(42)},
                                100.0);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesPickOfLbaTheEntryDoesNotOffer) {
  RecordingAuditor rec;
  rec.auditor().OnSchedulerPick("RSATF", /*queue_size=*/2, /*picked_index=*/0,
                                /*chosen_lba=*/BlockAddr(999),
                                {BlockAddr(10), BlockAddr(20), BlockAddr(30)},
                                100.0);
  ASSERT_EQ(rec.auditor().violations(), 1u);
  EXPECT_NE(rec.auditor().last_violation().find("999"), std::string::npos);
}

// --- Queue conservation ---

TEST(AuditorTest, CleanEntryLifecyclePasses) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 1, /*delayed=*/false);
  rec.auditor().OnEntryDispatched(0, 1);
  rec.auditor().OnEntryCompleted(0, 1);
  rec.auditor().OnEntryQueued(1, 2, /*delayed=*/true);
  rec.auditor().OnEntryCancelled(1, 2);
  EXPECT_EQ(rec.auditor().violations(), 0u);
}

TEST(AuditorTest, CatchesDoubleQueuedEntry) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 7, false);
  rec.auditor().OnEntryQueued(0, 7, false);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesCompletionWithoutDispatch) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 7, false);
  rec.auditor().OnEntryCompleted(0, 7);  // skipped the dispatch transition
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesResurrectedEntry) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 7, false);
  rec.auditor().OnEntryCancelled(0, 7);
  rec.auditor().OnEntryDispatched(0, 7);  // cancelled entries must stay dead
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesEntryDispatchedFromWrongDisk) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(/*disk=*/0, 7, false);
  rec.auditor().OnEntryDispatched(/*disk=*/3, 7);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

// --- Replica-set agreement ---

TEST(AuditorTest, CleanReplicaMapPasses) {
  RecordingAuditor rec;
  // 2 mirrors x 2 rotational replicas; rotational replicas share a disk.
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 8, {{0, 100}, {0, 612}, {1, 100}, {1, 612}}),
      MakeFragment(108, 4, {{0, 108}, {0, 620}, {1, 108}, {1, 620}}),
  };
  rec.auditor().OnArrayMap(100, 12, /*dm=*/2, /*dr=*/2, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  EXPECT_EQ(rec.auditor().violations(), 0u);
}

TEST(AuditorTest, CatchesMirrorCopiesOnSameDisk) {
  RecordingAuditor rec;
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 8, {{0, 100}, {0, 612}}),  // both mirrors on disk 0
  };
  rec.auditor().OnArrayMap(100, 8, /*dm=*/2, /*dr=*/1, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  ASSERT_GE(rec.auditor().violations(), 1u);
  EXPECT_NE(rec.auditor().last_violation().find("mirror"), std::string::npos);
}

TEST(AuditorTest, CatchesReplicaOnNonexistentDisk) {
  RecordingAuditor rec;
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 8, {{0, 100}, {5, 100}}),  // disk 5 of a 2-disk array
  };
  rec.auditor().OnArrayMap(100, 8, /*dm=*/2, /*dr=*/1, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesReplicaPastEndOfDisk) {
  RecordingAuditor rec;
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 8, {{0, 100}, {1, 1020}}),  // 1020+8 > 1024
  };
  rec.auditor().OnArrayMap(100, 8, /*dm=*/2, /*dr=*/1, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesGapInFragmentTiling) {
  RecordingAuditor rec;
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 4, {{0, 100}, {1, 100}}),
      MakeFragment(106, 6, {{0, 106}, {1, 106}}),  // sectors 104-105 missing
  };
  rec.auditor().OnArrayMap(100, 12, /*dm=*/2, /*dr=*/1, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesWrongReplicaCount) {
  RecordingAuditor rec;
  std::vector<AuditFragment> frags = {
      MakeFragment(100, 8, {{0, 100}}),  // dm*dr = 2 but only one replica
  };
  rec.auditor().OnArrayMap(100, 8, /*dm=*/2, /*dr=*/1, /*num_disks=*/2,
                           /*per_disk_physical_sectors=*/1024, frags);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

// --- NVRAM / delayed-write consistency ---

TEST(AuditorTest, CleanNvramLifecyclePasses) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 9, /*delayed=*/true);
  rec.auditor().OnNvramPut(0, 300, /*owner_entry=*/9);
  rec.auditor().OnNvramErase(0, 300);
  rec.auditor().OnEntryDispatched(0, 9);
  rec.auditor().OnEntryCompleted(0, 9);
  EXPECT_EQ(rec.auditor().violations(), 0u);
}

TEST(AuditorTest, CatchesNvramRecordWithDeadOwner) {
  RecordingAuditor rec;
  rec.auditor().OnNvramPut(0, 300, /*owner_entry=*/77);  // 77 was never queued
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesNvramRecordOwnedByForegroundEntry) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 9, /*delayed=*/false);
  rec.auditor().OnNvramPut(0, 300, /*owner_entry=*/9);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, CatchesEraseOfUnknownNvramRecord) {
  RecordingAuditor rec;
  rec.auditor().OnNvramErase(0, 300);
  EXPECT_EQ(rec.auditor().violations(), 1u);
}

// --- Quiescence ---

TEST(AuditorTest, QuiescentWithLeftoverEntryFails) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 9, /*delayed=*/false);
  rec.auditor().CheckQuiescent(0, 0, 0, 0, 0, 0);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, QuiescentWithNonzeroCountFails) {
  RecordingAuditor rec;
  rec.auditor().CheckQuiescent(/*fg_queued=*/1, 0, 0, 0, 0, 0);
  EXPECT_GE(rec.auditor().violations(), 1u);
}

TEST(AuditorTest, TrulyQuiescentPasses) {
  RecordingAuditor rec;
  rec.auditor().OnEntryQueued(0, 9, false);
  rec.auditor().OnEntryDispatched(0, 9);
  rec.auditor().OnEntryCompleted(0, 9);
  rec.auditor().CheckQuiescent(0, 0, 0, 0, 0, 0);
  EXPECT_EQ(rec.auditor().violations(), 0u);
}

// --- Default handler ---

TEST(AuditorDeathTest, DefaultHandlerAbortsWithOperands) {
  InvariantAuditor auditor;
  EXPECT_DEATH(auditor.OnEventScheduled(/*now=*/SimTime(100), /*at=*/SimTime(99)),
               "AUDIT failed");
}

}  // namespace
}  // namespace mimdraid
