// Backend conformance: the observable contract every ArrayBackend
// implementation must honor, run against all three backends (mirror, RAID-5,
// and the general k+m erasure controller — here a 2+2 group, so redundancy
// exhaustion needs m+1 = 3 failures) over the shared DriveSet engine. Rigs
// come off the MimdRaid
// backend-selection path — the same assembly the benches and experiments use
// — with the invariant auditor attached throughout, so every scenario also
// proves fault conservation (no failed sub-op is silently dropped).
//
// The contract under test:
//   * healthy mixed I/O completes kOk, exactly once per op;
//   * a tolerated explicit failure degrades service but never surfaces an
//     intermediate status;
//   * Rebuild() restores redundancy (IsFailed clears, service recovers);
//   * transient faults are absorbed by the engine's retry machinery;
//   * redundancy exhaustion surfaces kUnrecoverable — never a hang, never an
//     intermediate status;
//   * a detected fail-stop promotes a hot spare and auto-rebuilds onto it;
//   * the idle scrub sweeper finds and repairs planted latent errors;
//   * ExportStats publishes fault.* plus a backend-specific prefix.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/obs/stats_registry.h"
#include "src/obs/trace_collector.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint64_t kDataset = 2400;
constexpr uint64_t kStepBudget = 30'000'000;

struct RigConfig {
  bool faults = false;
  FaultInjectorOptions fault;
  uint32_t disk_error_fail_threshold = 0;
  uint32_t hot_spares = 0;
  SimDuration scrub_interval_us;
  InvariantAuditor* auditor = nullptr;
  uint64_t seed = 5;
};

// Four small test drives for any backend: the mirror runs them as two
// mirrored columns (2x1x2), RAID-5 as a 4-disk rotating-parity group, and
// the erasure controller as a 2+2 code (two-fault tolerant).
std::unique_ptr<MimdRaid> MakeArray(ArrayBackendKind kind,
                                    const RigConfig& rig = {}) {
  MimdRaidOptions options;
  options.backend = kind;
  if (kind == ArrayBackendKind::kMirror) {
    options.aspect.ds = 2;
    options.aspect.dr = 1;
    options.aspect.dm = 2;
  } else {
    options.aspect.ds = 4;
    options.aspect.dr = 1;
    options.aspect.dm = 1;
    options.parity_shards = 2;  // kErasure only; kRaid5 ignores it
  }
  options.scheduler = SchedulerKind::kSatf;
  options.dataset_sectors = kDataset;
  options.stripe_unit_sectors = 16;
  options.geometry = MakeTestGeometry();
  options.profile = MakeTestSeekProfile();
  options.seed = rig.seed;
  options.enable_fault_injection = rig.faults;
  options.fault = rig.fault;
  options.fault.seed = rig.seed;
  options.disk_error_fail_threshold = rig.disk_error_fail_threshold;
  options.hot_spares = rig.hot_spares;
  options.scrub_interval_us = rig.scrub_interval_us;
  options.auditor = rig.auditor;
  return std::make_unique<MimdRaid>(options);
}

struct IoTally {
  int done = 0;
  int ok = 0;
  int unrecoverable = 0;
  int intermediate = 0;  // must stay zero: the contract's core clause
};

// Submits `ops` random operations and pumps the simulator until all have
// completed exactly once.
void RunMix(MimdRaid* array, int ops, uint64_t seed, double read_frac,
            IoTally* tally) {
  Rng rng(seed);
  std::vector<int> completions(ops, 0);
  for (int i = 0; i < ops; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba =
        rng.UniformU64(array->backend().dataset_sectors() - sectors);
    const DiskOp op =
        rng.Bernoulli(read_frac) ? DiskOp::kRead : DiskOp::kWrite;
    array->backend().Submit(op, lba, sectors, [tally, &completions,
                                               i](const IoResult& r) {
      ++completions[i];
      ++tally->done;
      switch (r.status) {
        case IoStatus::kOk:
          ++tally->ok;
          break;
        case IoStatus::kUnrecoverable:
          ++tally->unrecoverable;
          break;
        default:
          ++tally->intermediate;
          ADD_FAILURE() << "op " << i << " surfaced intermediate status "
                        << IoStatusName(r.status);
      }
    });
    if (rng.Bernoulli(0.3)) {
      array->sim().RunUntil(array->sim().Now() +
                            SimDuration(static_cast<int64_t>(rng.UniformU64(10'000))));
    }
  }
  uint64_t steps = 0;
  while (tally->done < ops) {
    ASSERT_TRUE(array->sim().Step()) << "simulator ran dry";
    ASSERT_LT(++steps, kStepBudget) << "completions lost";
  }
  for (int i = 0; i < ops; ++i) {
    ASSERT_EQ(completions[i], 1) << "op " << i;
  }
}

// Stops the scrubber and drains the backend to full quiescence.
void DrainAll(MimdRaid* array) {
  array->backend().StopScrub();
  uint64_t steps = 0;
  while ((!array->backend().Idle() || array->backend().RebuildInProgress()) &&
         array->sim().Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(array->backend().Idle());
}

// Plants a persistent latent sector error under logical `lba` on one
// redundancy-covered copy (the other copies keep the data recoverable).
void PlantLatentError(MimdRaid* array, uint64_t lba) {
  FaultInjector* injector = array->fault_injector();
  ASSERT_NE(injector, nullptr);
  if (array->backend_kind() == ArrayBackendKind::kMirror) {
    for (const ArrayFragment& f : array->layout().Map(lba, 1)) {
      injector->InjectLatentError(f.replicas[0].disk, f.replicas[0].lba);
    }
  } else if (array->backend_kind() == ArrayBackendKind::kRaid5) {
    for (const Raid5Fragment& f : array->raid5_layout().Map(lba, 1)) {
      injector->InjectLatentError(f.data_disk, f.disk_lba);
    }
  } else {
    for (const EcFragment& f : array->ec_layout().Map(lba, 1)) {
      injector->InjectLatentError(f.data_disk, f.disk_lba);
    }
  }
}

class BackendConformance
    : public ::testing::TestWithParam<ArrayBackendKind> {};

TEST_P(BackendConformance, HealthyMixedIoCompletesOk) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  auto array = MakeArray(GetParam(), rig);
  IoTally tally;
  RunMix(array.get(), 200, 11, 0.6, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.ok, 200);
  EXPECT_EQ(tally.unrecoverable, 0);
  EXPECT_EQ(tally.intermediate, 0);
  EXPECT_EQ(array->backend().fault_stats().TotalFaultsSeen(), 0u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
}

TEST_P(BackendConformance, DegradedIoSurvivesToleratedFailure) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  auto array = MakeArray(GetParam(), rig);
  ASSERT_TRUE(array->backend().FailDisk(SlotId(0)));
  EXPECT_TRUE(array->backend().IsFailed(SlotId(0)));
  IoTally tally;
  RunMix(array.get(), 150, 23, 0.6, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.ok, 150) << "single tolerated failure must not lose data";
  EXPECT_EQ(tally.intermediate, 0);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, RebuildRestoresRedundancy) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  auto array = MakeArray(GetParam(), rig);
  // Dirty the array, lose a disk, serve degraded, then rebuild in place.
  IoTally warm;
  RunMix(array.get(), 60, 31, 0.4, &warm);
  DrainAll(array.get());
  ASSERT_TRUE(array->backend().FailDisk(SlotId(0)));
  IoTally degraded;
  RunMix(array.get(), 60, 37, 0.6, &degraded);
  DrainAll(array.get());

  bool rebuilt = false;
  IoResult rebuild_result;
  array->backend().Rebuild(SlotId(0), [&](const IoResult& r) {
    rebuild_result = r;
    rebuilt = true;
  });
  uint64_t steps = 0;
  while (!rebuilt) {
    ASSERT_TRUE(array->sim().Step());
    ASSERT_LT(++steps, kStepBudget) << "rebuild wedged";
  }
  EXPECT_EQ(rebuild_result.status, IoStatus::kOk);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)));
  DrainAll(array.get());
  EXPECT_FALSE(array->backend().RebuildInProgress());

  IoTally healthy;
  RunMix(array.get(), 60, 41, 0.6, &healthy);
  DrainAll(array.get());
  EXPECT_EQ(healthy.ok, 60);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, TransientFaultsAreAbsorbedByRetry) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.fault.transient_error_prob = 0.05;
  rig.fault.timeout_prob = 0.01;
  rig.fault.watchdog_timeout_us = SimDuration(50'000);
  auto array = MakeArray(GetParam(), rig);
  IoTally tally;
  RunMix(array.get(), 200, 43, 0.6, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.intermediate, 0);
  EXPECT_EQ(tally.done, 200);
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_GT(fs.TotalFaultsSeen(), 0u) << "fault mix injected nothing";
  EXPECT_GT(fs.retries_issued, 0u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, RedundancyExhaustionSurfacesUnrecoverable) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  auto array = MakeArray(GetParam(), rig);
  // Take out enough disks to exhaust the redundancy: for the mirror, both
  // copies of logical block 0's column; for RAID-5, any two disks; for the
  // 2+2 erasure group, any m+1 = 3 disks (m failures are still tolerated).
  std::vector<uint32_t> victims = {0, 1};
  if (GetParam() == ArrayBackendKind::kMirror) {
    const std::vector<ArrayFragment> frags = array->layout().Map(0, 1);
    ASSERT_GE(frags[0].replicas.size(), 2u);
    victims = {frags[0].replicas[0].disk, frags[0].replicas[1].disk};
  } else if (GetParam() == ArrayBackendKind::kErasure) {
    victims = {0, 1, 2};
  }
  for (const uint32_t v : victims) {
    ASSERT_TRUE(array->backend().FailDisk(SlotId(v)));
  }
  IoTally tally;
  RunMix(array.get(), 120, 47, 0.6, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.intermediate, 0)
      << "exhausted redundancy must surface kUnrecoverable, nothing else";
  EXPECT_GT(tally.unrecoverable, 0) << "two shared-redundancy disks lost "
                                       "but nothing surfaced as data loss";
  EXPECT_GT(array->backend().fault_stats().unrecoverable_completions, 0u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, DetectedFailStopPromotesSpareAndRebuilds) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.hot_spares = 1;
  auto array = MakeArray(GetParam(), rig);
  EXPECT_EQ(array->backend().spares_available(), 1u);
  array->fault_injector()->FailStop(0);
  // Writes across the whole dataset guarantee the dead drive is touched, so
  // the engine detects the fail-stop, promotes the spare into the slot, and
  // kicks off the automatic rebuild.
  IoTally tally;
  RunMix(array.get(), 150, 53, 0.0, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.intermediate, 0);
  EXPECT_EQ(tally.ok, 150) << "spare-backed failure must not lose writes";
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_EQ(fs.spares_promoted, 1u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 1u);
  EXPECT_EQ(array->backend().spares_available(), 0u);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)))
      << "auto-rebuild onto the promoted spare must clear the failed flag";
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, IdleScrubRepairsPlantedLatentErrors) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.scrub_interval_us = SimDuration(20'000);
  auto array = MakeArray(GetParam(), rig);
  PlantLatentError(array.get(), 100);
  PlantLatentError(array.get(), 800);
  PlantLatentError(array.get(), 1600);
  // No foreground work at all: only the idle sweeper touches the drives.
  array->sim().RunUntil(array->sim().Now() + SimDuration(4'000'000));
  DrainAll(array.get());
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_GT(fs.scrub_reads, 0u) << "scrub sweeper never ran";
  EXPECT_GE(fs.scrub_repairs, 3u) << "planted latent errors not repaired";
  EXPECT_GT(fs.scrub_sectors_read, 0u) << "scrub read accounting missing";
  ASSERT_GE(fs.scrub_sweeps_completed, 1u);
  // Every disk was live for the whole sweep: full coverage.
  EXPECT_DOUBLE_EQ(fs.scrub_last_sweep_coverage, 1.0);
  // The repairs rewrote the bad copies: a fresh sweep finds nothing new.
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
}

TEST_P(BackendConformance, ExportStatsPublishesFaultAndBackendCounters) {
  auto array = MakeArray(GetParam());
  IoTally tally;
  RunMix(array.get(), 80, 59, 0.5, &tally);
  DrainAll(array.get());
  StatsRegistry registry;
  array->backend().ExportStats(&registry);
  // The policy-independent fault block is always present...
  EXPECT_TRUE(registry.Contains("fault.retries_issued"));
  EXPECT_TRUE(registry.Contains("fault.failovers"));
  EXPECT_TRUE(registry.Contains("fault.scrub_reads"));
  EXPECT_TRUE(registry.Contains("fault.scrub_sectors_read"));
  EXPECT_TRUE(registry.Contains("fault.scrub_last_sweep_coverage"));
  EXPECT_TRUE(registry.Contains("fault.spares_promoted"));
  // ...plus the backend's own prefix with real traffic behind it.
  std::string prefix = "raid5.reads_completed";
  if (GetParam() == ArrayBackendKind::kMirror) {
    prefix = "array.reads_completed";
  } else if (GetParam() == ArrayBackendKind::kErasure) {
    prefix = "ec.reads_completed";
  }
  EXPECT_TRUE(registry.Contains(prefix));
  EXPECT_GT(registry.Get(prefix), 0.0);
}

// ---------------------------------------------------------------------------
// Heterogeneous fleets: the same contract on mixed drive generations.
// ---------------------------------------------------------------------------

// Fast/slow halves of the array: the first half of the slots run the test
// geometry at its native 10000 RPM, the second half a 7200 RPM generation.
// `spare_generations` appends per-spare generation assignments (rig.hot_spares
// must match its size).
std::unique_ptr<MimdRaid> MakeMixedRpmArray(
    ArrayBackendKind kind, const RigConfig& rig,
    const std::vector<uint32_t>& spare_generations = {},
    TraceCollector* collector = nullptr) {
  MimdRaidOptions options;
  options.backend = kind;
  if (kind == ArrayBackendKind::kMirror) {
    options.aspect.ds = 2;
    options.aspect.dr = 1;
    options.aspect.dm = 2;
  } else {
    options.aspect.ds = 4;
    options.aspect.dr = 1;
    options.aspect.dm = 1;
    options.parity_shards = 2;  // kErasure only; kRaid5 ignores it
  }
  options.scheduler = SchedulerKind::kSatf;
  options.dataset_sectors = kDataset;
  options.stripe_unit_sectors = 16;
  options.seed = rig.seed;
  options.enable_fault_injection = rig.faults;
  options.fault = rig.fault;
  options.fault.seed = rig.seed;
  options.disk_error_fail_threshold = rig.disk_error_fail_threshold;
  options.hot_spares = rig.hot_spares;
  options.scrub_interval_us = rig.scrub_interval_us;
  options.auditor = rig.auditor;
  options.collector = collector;

  DriveParams fast;
  fast.name = "fast10k";
  fast.geometry = MakeTestGeometry();
  fast.profile = MakeTestSeekProfile();
  DriveParams slow = fast;
  slow.name = "slow7200";
  slow.geometry.rpm = 7200;
  // A drive generation too small to cover the array's used span: 4
  // cylinders of the test zone hold fewer sectors than any slot uses.
  DriveParams tiny = fast;
  tiny.name = "tiny";
  tiny.geometry.num_cylinders = 4;
  tiny.geometry.zones = {tiny.geometry.zones[0]};
  options.fleet.generations = {fast, slow, tiny};
  const uint32_t array_slots =
      static_cast<uint32_t>(options.aspect.TotalDisks());
  for (uint32_t i = 0; i < array_slots; ++i) {
    options.fleet.slot_generation.push_back(i < array_slots / 2 ? 0u : 1u);
  }
  EXPECT_EQ(spare_generations.size(), static_cast<size_t>(rig.hot_spares));
  for (const uint32_t gen : spare_generations) {
    options.fleet.slot_generation.push_back(gen);
  }
  return std::make_unique<MimdRaid>(options);
}

TEST_P(BackendConformance, MixedRpmFleetKeepsContractAndPhaseIdentity) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.scrub_interval_us = SimDuration(20'000);
  TraceCollector collector;
  auto array = MakeMixedRpmArray(GetParam(), rig, {}, &collector);

  // The halves really spin at different speeds.
  const uint32_t n = static_cast<uint32_t>(array->num_disks());
  EXPECT_EQ(array->disk(0).layout().geometry().rpm, 10000u);
  EXPECT_EQ(array->disk(n - 1).layout().geometry().rpm, 7200u);

  // Healthy mixed I/O, then a latent error for the scrubber.
  IoTally healthy;
  RunMix(array.get(), 150, 67, 0.6, &healthy);
  DrainAll(array.get());
  EXPECT_EQ(healthy.ok, 150);

  // Failover: lose a fast disk, keep serving from the slow redundancy.
  ASSERT_TRUE(array->backend().FailDisk(SlotId(0)));
  IoTally degraded;
  RunMix(array.get(), 100, 71, 0.6, &degraded);
  DrainAll(array.get());
  EXPECT_EQ(degraded.ok, 100)
      << "mixed-RPM redundancy must cover a single failure";

  // Rebuild restores the failed slot.
  bool rebuilt = false;
  IoResult rebuild_result;
  array->backend().Rebuild(SlotId(0), [&](const IoResult& r) {
    rebuild_result = r;
    rebuilt = true;
  });
  uint64_t steps = 0;
  while (!rebuilt) {
    ASSERT_TRUE(array->sim().Step());
    ASSERT_LT(++steps, kStepBudget) << "mixed-RPM rebuild wedged";
  }
  EXPECT_EQ(rebuild_result.status, IoStatus::kOk);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)));
  DrainAll(array.get());

  // Scrub coverage: a planted latent error is swept up on the mixed fleet
  // and the completed sweep covers every live replica. (DrainAll stopped
  // the sweeper, so restart it for this phase.)
  PlantLatentError(array.get(), 800);
  array->backend().StartScrub();
  array->sim().RunUntil(array->sim().Now() + SimDuration(4'000'000));
  DrainAll(array.get());
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_GE(fs.scrub_repairs, 1u) << "latent error survived the sweeper";
  ASSERT_GE(fs.scrub_sweeps_completed, 1u);
  EXPECT_DOUBLE_EQ(fs.scrub_last_sweep_coverage, 1.0);

  // Phase attribution stays exact per request even though slow-half legs
  // rotate at a different speed: the breakdown is defined to sum to the
  // end-to-end latency to double rounding.
  ASSERT_GE(collector.requests().size(), 250u);
  EXPECT_EQ(collector.open_requests(), 0u);
  for (const RequestRecord& r : collector.requests()) {
    EXPECT_NEAR(r.phases.SumUs(), r.EndToEndUs(), 1e-6)
        << "request " << r.id << " lost time in the phase breakdown";
  }

  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
}

TEST_P(BackendConformance, IncompatibleSpareIsRejectedNotSilentlyAccepted) {
  // Spare pool: a drive too small for any slot's used span first, a
  // compatible one second. Promotion must skip (and count) the small one
  // and take the compatible one — the old behavior silently promoted
  // whatever was first.
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.hot_spares = 2;
  auto array =
      MakeMixedRpmArray(GetParam(), rig, {/*tiny=*/2u, /*fast=*/0u});
  EXPECT_EQ(array->backend().spares_available(), 2u);

  array->fault_injector()->FailStop(0);
  IoTally tally;
  RunMix(array.get(), 150, 73, 0.0, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.intermediate, 0);
  EXPECT_EQ(tally.ok, 150);

  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_EQ(fs.spare_rejected, 1u)
      << "undersized spare was not rejected at promotion";
  EXPECT_EQ(fs.spares_promoted, 1u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 1u);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)));
  // The incompatible spare stays pooled for a slot it might fit.
  EXPECT_EQ(array->backend().spares_available(), 1u);

  StatsRegistry registry;
  array->backend().ExportStats(&registry);
  EXPECT_EQ(registry.Get("fault.spare_rejected"), 1.0);

  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, RepeatedPromotionsCountIncompatibleSpareOnce) {
  // Regression: an incompatible pooled spare used to bump fault.spare_rejected
  // on *every* promotion attempt that skipped it. Two sequential failures
  // both walk past the same undersized spare; it must count exactly once.
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.hot_spares = 3;
  auto array = MakeMixedRpmArray(GetParam(), rig,
                                 {/*tiny=*/2u, /*fast=*/0u, /*fast=*/0u});
  EXPECT_EQ(array->backend().spares_available(), 3u);

  // Pick two victims that never share redundancy: disk 0 plus any disk
  // outside block 0's replica set (for the parity codes any distinct pair
  // works, and failures are sequential anyway).
  const uint32_t first = 0;
  uint32_t second = static_cast<uint32_t>(array->num_disks()) - 1;
  if (GetParam() == ArrayBackendKind::kMirror) {
    const std::vector<ArrayFragment> frags = array->layout().Map(0, 1);
    for (uint32_t d = 1; d < array->num_disks(); ++d) {
      bool shares = false;
      for (const auto& replica : frags[0].replicas) {
        shares |= replica.disk == d;
      }
      if (!shares) {
        second = d;
        break;
      }
    }
  }

  array->fault_injector()->FailStop(first);
  IoTally tally_a;
  RunMix(array.get(), 120, 83, 0.0, &tally_a);
  DrainAll(array.get());
  EXPECT_EQ(array->backend().fault_stats().spare_rejected, 1u);

  array->fault_injector()->FailStop(second);
  IoTally tally_b;
  RunMix(array.get(), 120, 89, 0.0, &tally_b);
  DrainAll(array.get());

  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_EQ(fs.spare_rejected, 1u)
      << "the same pooled spare was re-counted at the second promotion";
  EXPECT_EQ(fs.spares_promoted, 2u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 2u);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(first)));
  EXPECT_FALSE(array->backend().IsFailed(SlotId(second)));
  // Only the incompatible spare remains pooled.
  EXPECT_EQ(array->backend().spares_available(), 1u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST_P(BackendConformance, OnlyIncompatibleSparesLeavesSlotFailed) {
  InvariantAuditor auditor;
  RigConfig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.hot_spares = 1;
  auto array = MakeMixedRpmArray(GetParam(), rig, {/*tiny=*/2u});
  array->fault_injector()->FailStop(0);
  IoTally tally;
  RunMix(array.get(), 120, 79, 0.0, &tally);
  DrainAll(array.get());
  EXPECT_EQ(tally.ok, 120) << "redundancy must still cover the failure";

  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_GE(fs.spare_rejected, 1u);
  EXPECT_EQ(fs.spares_promoted, 0u);
  EXPECT_TRUE(array->backend().IsFailed(SlotId(0)))
      << "slot cannot recover without a compatible spare";
  EXPECT_EQ(array->backend().spares_available(), 1u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformance,
    ::testing::Values(ArrayBackendKind::kMirror, ArrayBackendKind::kRaid5,
                      ArrayBackendKind::kErasure),
    [](const ::testing::TestParamInfo<ArrayBackendKind>& param) {
      switch (param.param) {
        case ArrayBackendKind::kMirror:
          return "Mirror";
        case ArrayBackendKind::kRaid5:
          return "Raid5";
        case ArrayBackendKind::kErasure:
          return "Erasure";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// Corruption injection: the negative control for the auditor wiring. A
// healthy RAID-5 run passes the terminal check; a deliberately orphaned
// fault record (a failed sub-op the policy never resolves — the bug class
// the fault-conservation invariant exists to catch) must trip it.
// ---------------------------------------------------------------------------

TEST(BackendConformance, AuditorCatchesOrphanedFaultRecordOnRaid5) {
  InvariantAuditor auditor;
  std::vector<std::string> messages;
  auditor.set_failure_handler(
      [&](const std::string& m) { messages.push_back(m); });
  RigConfig rig;
  rig.auditor = &auditor;
  auto array = MakeArray(ArrayBackendKind::kRaid5, rig);
  IoTally tally;
  RunMix(array.get(), 60, 61, 0.6, &tally);
  DrainAll(array.get());
  // Positive control: the real run is clean.
  array->backend().AuditQuiescent();
  ASSERT_EQ(auditor.violations(), 0u);

  // Seeded corruption: report a disk sub-op failure that no recovery path
  // ever resolves, then claim quiescence.
  auditor.OnIoFault(/*disk=*/2, /*entry_id=*/0xDEADBEEF);
  array->backend().AuditQuiescent();
  EXPECT_GE(auditor.violations(), 1u)
      << "orphaned fault record passed the terminal consistency check";
  ASSERT_FALSE(messages.empty());
  EXPECT_NE(messages.back().find("fault"), std::string::npos)
      << "violation message does not identify the fault leak: "
      << messages.back();
}

}  // namespace
}  // namespace mimdraid
