#include <gtest/gtest.h>

#include "src/cache/lru_cache.h"

namespace mimdraid {
namespace {

TEST(LruCache, MissThenHit) {
  LruBlockCache cache(1 << 20, 16);
  EXPECT_FALSE(cache.Lookup(0, 16));
  cache.Insert(0, 16);
  EXPECT_TRUE(cache.Lookup(0, 16));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, CapacityInBlocks) {
  LruBlockCache cache(16 * 512 * 4, 16);  // 4 blocks
  EXPECT_EQ(cache.capacity_blocks(), 4u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruBlockCache cache(16 * 512 * 2, 16);  // 2 blocks
  cache.Insert(0, 16);    // block 0
  cache.Insert(16, 16);   // block 1
  cache.Insert(32, 16);   // block 2 -> evicts block 0
  EXPECT_FALSE(cache.Lookup(0, 16));
  EXPECT_TRUE(cache.Lookup(16, 16));
  EXPECT_TRUE(cache.Lookup(32, 16));
}

TEST(LruCache, LookupRefreshesRecency) {
  LruBlockCache cache(16 * 512 * 2, 16);
  cache.Insert(0, 16);
  cache.Insert(16, 16);
  EXPECT_TRUE(cache.Lookup(0, 16));  // block 0 is now MRU
  cache.Insert(32, 16);              // evicts block 1
  EXPECT_TRUE(cache.Lookup(0, 16));
  EXPECT_FALSE(cache.Lookup(16, 16));
}

TEST(LruCache, MultiBlockRangeNeedsAllBlocks) {
  LruBlockCache cache(1 << 20, 16);
  cache.Insert(0, 16);
  // Range spans blocks 0 and 1; block 1 missing.
  EXPECT_FALSE(cache.Lookup(8, 16));
  cache.Insert(16, 16);
  EXPECT_TRUE(cache.Lookup(8, 16));
}

TEST(LruCache, UnalignedRangesCoverPartialBlocks) {
  LruBlockCache cache(1 << 20, 16);
  cache.Insert(20, 4);  // covers block 1 only
  EXPECT_TRUE(cache.Lookup(16, 16));
  EXPECT_FALSE(cache.Lookup(0, 16));
}

TEST(LruCache, ReinsertDoesNotDuplicate) {
  LruBlockCache cache(1 << 20, 16);
  cache.Insert(0, 16);
  cache.Insert(0, 16);
  EXPECT_EQ(cache.resident_blocks(), 1u);
}

TEST(LruCache, HitRate) {
  LruBlockCache cache(1 << 20, 16);
  cache.Insert(0, 16);
  EXPECT_TRUE(cache.Lookup(0, 16));
  EXPECT_TRUE(cache.Lookup(0, 16));
  EXPECT_FALSE(cache.Lookup(1024, 16));
  EXPECT_NEAR(cache.HitRate(), 2.0 / 3.0, 1e-9);
}

// Regression: an Insert spanning more blocks than the cache holds used to
// evict blocks it had installed earlier in the same call, so a Lookup of the
// surviving tail could still miss and the list churned through every block.
TEST(LruCache, InsertWiderThanCacheKeepsTrailingBlocks) {
  LruBlockCache cache(16 * 512 * 2, 16);  // 2 blocks
  cache.Insert(0, 16 * 5);                // blocks 0..4
  EXPECT_EQ(cache.resident_blocks(), 2u);
  EXPECT_TRUE(cache.Lookup(3 * 16, 2 * 16));  // blocks 3,4 resident
  EXPECT_FALSE(cache.Lookup(0, 16));
  EXPECT_FALSE(cache.Lookup(2 * 16, 16));
}

TEST(LruCache, InsertExactlyCapacityRetainsWholeRange) {
  LruBlockCache cache(16 * 512 * 3, 16);  // 3 blocks
  cache.Insert(160, 16);                  // pre-existing resident
  cache.Insert(0, 16 * 3);                // blocks 0..2, evicts block 10
  EXPECT_TRUE(cache.Lookup(0, 16 * 3));
  EXPECT_FALSE(cache.Lookup(160, 16));
}

TEST(LruCache, SingleBlockCapacityEdgeCase) {
  LruBlockCache cache(16 * 512, 16);  // 1 block
  cache.Insert(0, 16 * 4);            // blocks 0..3 -> only block 3 stays
  EXPECT_EQ(cache.resident_blocks(), 1u);
  EXPECT_TRUE(cache.Lookup(3 * 16, 16));
  EXPECT_FALSE(cache.Lookup(0, 16));
}

// A partial hit is one miss, and the resident prefix must NOT be touched:
// a failed range lookup is not a use of the blocks that happened to be there.
TEST(LruCache, PartialHitCountsOneMissAndTouchesNothing) {
  LruBlockCache cache(16 * 512 * 2, 16);  // 2 blocks
  cache.Insert(0, 16);                    // block 0 (LRU after next insert)
  cache.Insert(16, 16);                   // block 1 (MRU)
  // Range covers blocks 0..2; block 2 missing -> miss, exactly one count.
  const uint64_t misses_before = cache.misses();
  EXPECT_FALSE(cache.Lookup(0, 16 * 3));
  EXPECT_EQ(cache.misses(), misses_before + 1);
  // If the failed lookup had touched block 0, block 1 would now be LRU and
  // the next insert would evict it. Pin that block 0 is still the victim.
  cache.Insert(32, 16);  // block 2
  EXPECT_FALSE(cache.Lookup(0, 16));
  EXPECT_TRUE(cache.Lookup(16, 16));
  EXPECT_TRUE(cache.Lookup(32, 16));
}

TEST(LruCache, LargeWorkingSetBounded) {
  LruBlockCache cache(16 * 512 * 100, 16);
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(i * 16, 16);
  }
  EXPECT_EQ(cache.resident_blocks(), 100u);
}

}  // namespace
}  // namespace mimdraid
