// Seeded chaos soak: a randomized fault mix (latent sector errors, transient
// errors, timeouts, explicit fail-stops) against the mirrored array, the
// RAID-5 controller, and the general (k+m) erasure controller, with the
// runtime invariant auditor attached. Every submitted operation must
// complete exactly once with a terminal status (kOk or kUnrecoverable —
// never an intermediate fault status), the array must drain to a quiescent
// state that passes the auditor's terminal consistency check, and the whole
// run must be bit-for-bit reproducible for a given seed.
//
// All rigs come off the MimdRaid backend-selection path and run the same
// DriveSet engine underneath; the soaks here are the parity check that every
// policy drives the shared retry/auto-fail/spare-promotion/scrub machinery
// equally hard. The erasure soak additionally pushes to m concurrent
// fail-stops (service must stay degraded-correct) and then past m, where
// affected reads must surface kUnrecoverable without wedging.
//
// Environment knobs (CI):
//   MIMDRAID_CHAOS_SEED     — run a single seed instead of the fixed three.
//   MIMDRAID_CHAOS_BACKEND  — "mirror", "raid5", or "ec": run only that
//                             backend's soaks (CI matrixes chaos across
//                             backends).
//   MIMDRAID_CHAOS_SUMMARY  — append per-seed fault/recovery counter summaries
//                             to this file (uploaded as a CI artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint64_t kDefaultSeeds[] = {101, 202, 303};

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("MIMDRAID_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {std::begin(kDefaultSeeds), std::end(kDefaultSeeds)};
}

// True when MIMDRAID_CHAOS_BACKEND is unset or names `backend`.
bool BackendSelected(const char* backend) {
  const char* env = std::getenv("MIMDRAID_CHAOS_BACKEND");
  return env == nullptr || std::string(env) == backend;
}

void AppendSummary(const std::string& header, const FaultRecoveryStats& fstats,
                   const FaultInjectorCounters& counters) {
  const char* path = std::getenv("MIMDRAID_CHAOS_SUMMARY");
  if (path == nullptr) {
    return;
  }
  std::ofstream out(path, std::ios::app);
  out << "=== " << header << " ===\n"
      << fstats.Summary()
      << "injected: latent_planted=" << counters.latent_errors_planted
      << " transient=" << counters.transient_errors
      << " timeouts=" << counters.timeouts
      << " media_error_reads=" << counters.media_error_reads
      << " failstop_rejections=" << counters.failstop_rejections
      << " write_repairs=" << counters.write_repairs << "\n";
}

// Compact digest of one run, for determinism checks: same seed, same digest.
struct ChaosDigest {
  uint64_t completion_time_sum = 0;
  uint64_t ok = 0;
  uint64_t unrecoverable = 0;
  uint64_t faults_seen = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;

  bool operator==(const ChaosDigest& o) const {
    return completion_time_sum == o.completion_time_sum && ok == o.ok &&
           unrecoverable == o.unrecoverable && faults_seen == o.faults_seen &&
           retries == o.retries && failovers == o.failovers;
  }
};

// Chaos rig shared by both backends: small test drives, the full fault mix,
// auditor, error-threshold auto-fail, one hot spare, and the scrub sweeper.
MimdRaidOptions ChaosOptions(ArrayBackendKind backend, uint64_t seed,
                             InvariantAuditor* auditor) {
  MimdRaidOptions options;
  options.backend = backend;
  options.dataset_sectors = 2400;
  options.stripe_unit_sectors = 16;
  options.geometry = MakeTestGeometry();
  options.profile = MakeTestSeekProfile();
  options.seed = seed;
  options.enable_fault_injection = true;
  options.fault.seed = seed;
  options.fault.watchdog_timeout_us = SimDuration(50'000);
  options.disk_error_fail_threshold = 6;
  options.scrub_interval_us = SimDuration(100'000);
  options.hot_spares = 1;
  options.auditor = auditor;
  return options;
}

// ---------------------------------------------------------------------------
// Mirrored-array chaos.
// ---------------------------------------------------------------------------

void RunMirrorChaos(uint64_t seed, bool write_summary, ChaosDigest* out) {
  constexpr uint64_t kDataset = 2400;
  constexpr int kOps = 600;
  constexpr uint64_t kStepBudget = 30'000'000;

  InvariantAuditor auditor;
  MimdRaidOptions options =
      ChaosOptions(ArrayBackendKind::kMirror, seed, &auditor);
  options.aspect.ds = 2;
  options.aspect.dr = 1;
  options.aspect.dm = 2;
  options.fault.latent_error_prob = 0.002;
  options.fault.transient_error_prob = 0.004;
  options.fault.timeout_prob = 0.002;
  MimdRaid array(options);
  Simulator& sim = array.sim();
  ArrayController& controller = array.controller();
  FaultInjector& injector = *array.fault_injector();

  // Seed a few guaranteed latent errors so the scrubber and failover paths
  // have deterministic work even if the stochastic mix comes up quiet.
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    const uint64_t lba = rng.UniformU64(kDataset - 4);
    for (const ArrayFragment& f : array.layout().Map(lba, 1)) {
      injector.InjectLatentError(f.replicas[0].disk, f.replicas[0].lba);
    }
  }

  std::vector<int> completions(kOps, 0);
  ChaosDigest digest;
  int done = 0;
  for (int i = 0; i < kOps; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba = rng.UniformU64(kDataset - sectors);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    controller.Submit(op, lba, sectors, [&, i](const IoResult& r) {
      ++completions[i];
      ++done;
      EXPECT_TRUE(r.status == IoStatus::kOk ||
                  r.status == IoStatus::kUnrecoverable)
          << "op " << i << " surfaced intermediate status "
          << IoStatusName(r.status);
      digest.completion_time_sum += static_cast<uint64_t>(r.completion_us.us());
      if (r.status == IoStatus::kOk) {
        ++digest.ok;
      } else {
        ++digest.unrecoverable;
      }
    });
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() +
                   SimDuration(static_cast<int64_t>(rng.UniformU64(20'000))));
    }
  }

  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(sim.Step()) << "simulator ran dry with ops outstanding";
    ASSERT_LT(++steps, kStepBudget) << "soak wedged: completions lost";
  }
  // Every op completed exactly once — no lost or duplicated completions.
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(completions[i], 1) << "op " << i;
  }

  // Let the idle array scrub for a while (latent-error repair), then stop the
  // sweeper and drain everything: foreground, propagations, spare rebuild.
  sim.RunUntil(sim.Now() + SimDuration(3'000'000));
  controller.StopScrub();
  steps = 0;
  while ((!controller.Idle() || controller.RebuildInProgress()) &&
         sim.Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(controller.Idle());
  EXPECT_EQ(controller.TotalQueued(), 0u);
  EXPECT_EQ(controller.DelayedBacklog(), 0u);
  controller.AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);

  const FaultRecoveryStats& fs = controller.fault_stats();
  EXPECT_GT(fs.TotalFaultsSeen(), 0u) << "chaos mix injected nothing";
  EXPECT_GT(fs.scrub_reads, 0u);
  digest.faults_seen = fs.TotalFaultsSeen();
  digest.retries = fs.retries_issued;
  digest.failovers = fs.failovers;

  if (write_summary) {
    AppendSummary("chaos seed " + std::to_string(seed) + " (mirror 2x1x2+1)",
                  fs, injector.counters());
  }
  *out = digest;
}

TEST(ChaosSoak, MirroredArraySurvivesRandomFaultMix) {
  if (!BackendSelected("mirror")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosDigest digest;
    RunMirrorChaos(seed, /*write_summary=*/true, &digest);
  }
}

TEST(ChaosSoak, MirrorRunIsDeterministicForSeed) {
  if (!BackendSelected("mirror")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  const uint64_t seed = ChaosSeeds().front();
  ChaosDigest a;
  ChaosDigest b;
  RunMirrorChaos(seed, /*write_summary=*/false, &a);
  RunMirrorChaos(seed, /*write_summary=*/false, &b);
  EXPECT_TRUE(a == b) << "same seed produced different runs";
}

// ---------------------------------------------------------------------------
// RAID-5 chaos: stochastic faults plus a mid-run fail-stop, with the same
// engine feature set as the mirror soak — auditor, error-threshold
// auto-fail, a hot spare (promotion + automatic rebuild), and the scrub
// sweeper.
// ---------------------------------------------------------------------------

void RunRaid5Chaos(uint64_t seed, bool write_summary, ChaosDigest* out) {
  constexpr uint32_t kDisks = 5;
  constexpr int kOps = 400;
  constexpr uint64_t kStepBudget = 30'000'000;

  InvariantAuditor auditor;
  MimdRaidOptions options =
      ChaosOptions(ArrayBackendKind::kRaid5, seed, &auditor);
  options.aspect.ds = kDisks;
  options.aspect.dr = 1;
  options.aspect.dm = 1;
  // 2000 usable sectors per disk once the parity share is carved out.
  options.dataset_sectors = 8000;
  options.fault.latent_error_prob = 0.001;
  options.fault.transient_error_prob = 0.003;
  options.fault.timeout_prob = 0.002;
  MimdRaid array(options);
  Simulator& sim = array.sim();
  Raid5Controller& controller = array.raid5();
  const Raid5Layout& layout = array.raid5_layout();
  FaultInjector& injector = *array.fault_injector();

  Rng rng(seed * 31 + 7);
  const uint32_t victim = static_cast<uint32_t>(rng.UniformU64(kDisks));
  const int failstop_at = kOps / 3;

  // Guaranteed latent errors, as in the mirror soak, so the scrubber's
  // repair-rewrite path has deterministic work.
  for (int i = 0; i < 4; ++i) {
    const uint64_t lba = rng.UniformU64(layout.data_capacity_sectors() - 4);
    for (const Raid5Fragment& f : layout.Map(lba, 1)) {
      injector.InjectLatentError(f.data_disk, f.disk_lba);
    }
  }

  std::vector<int> completions(kOps, 0);
  ChaosDigest digest;
  int done = 0;
  for (int i = 0; i < kOps; ++i) {
    if (i == failstop_at) {
      injector.FailStop(victim);  // detected on the next access
    }
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba =
        rng.UniformU64(layout.data_capacity_sectors() - sectors);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    controller.Submit(op, lba, sectors, [&, i](const IoResult& r) {
      ++completions[i];
      ++done;
      EXPECT_TRUE(r.status == IoStatus::kOk ||
                  r.status == IoStatus::kUnrecoverable)
          << "op " << i << " surfaced intermediate status "
          << IoStatusName(r.status);
      digest.completion_time_sum += static_cast<uint64_t>(r.completion_us.us());
      if (r.status == IoStatus::kOk) {
        ++digest.ok;
      } else {
        ++digest.unrecoverable;
      }
    });
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() +
                   SimDuration(static_cast<int64_t>(rng.UniformU64(20'000))));
    }
  }

  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(sim.Step()) << "simulator ran dry with ops outstanding";
    ASSERT_LT(++steps, kStepBudget) << "soak wedged: completions lost";
  }
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(completions[i], 1) << "op " << i;
  }

  // Idle scrub window (latent-error repair), then stop the sweeper and drain
  // everything: in-flight scrub reads, spare rebuild, deferred recovery.
  sim.RunUntil(sim.Now() + SimDuration(3'000'000));
  controller.StopScrub();
  steps = 0;
  while (!controller.Idle() && sim.Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(controller.Idle());

  // The detected fail-stop normally consumes the hot spare (promotion +
  // automatic rebuild clears the failed flag). If the spare went to an
  // earlier threshold auto-fail, rebuild the victim in place — kOk when
  // every row reconstructed, kUnrecoverable when rows were lost to the
  // stochastic mix; either way it must terminate.
  if (controller.IsFailed(SlotId(victim))) {
    bool rebuilt = false;
    IoResult rebuild_result;
    controller.Rebuild(SlotId(victim), [&](const IoResult& r) {
      rebuild_result = r;
      rebuilt = true;
    });
    steps = 0;
    while (!rebuilt) {
      ASSERT_TRUE(sim.Step());
      ASSERT_LT(++steps, kStepBudget) << "rebuild wedged";
    }
    EXPECT_TRUE(rebuild_result.status == IoStatus::kOk ||
                rebuild_result.status == IoStatus::kUnrecoverable ||
                rebuild_result.status == IoStatus::kDiskFailed);
    steps = 0;
    while (!controller.Idle() && sim.Step()) {
      ASSERT_LT(++steps, kStepBudget);
    }
  }

  controller.AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);

  const FaultRecoveryStats& fs = controller.fault_stats();
  EXPECT_GT(fs.TotalFaultsSeen(), 0u) << "chaos mix injected nothing";
  EXPECT_GT(fs.scrub_reads, 0u);
  digest.faults_seen = fs.TotalFaultsSeen();
  digest.retries = fs.retries_issued;
  digest.failovers = fs.failovers;

  if (write_summary) {
    AppendSummary("chaos seed " + std::to_string(seed) + " (raid5 5-disk+1)",
                  fs, injector.counters());
  }
  *out = digest;
}

TEST(ChaosSoak, Raid5SurvivesFaultMixWithMidRunFailStop) {
  if (!BackendSelected("raid5")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosDigest digest;
    RunRaid5Chaos(seed, /*write_summary=*/true, &digest);
  }
}

TEST(ChaosSoak, Raid5RunIsDeterministicForSeed) {
  if (!BackendSelected("raid5")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  const uint64_t seed = ChaosSeeds().front();
  ChaosDigest a;
  ChaosDigest b;
  RunRaid5Chaos(seed, /*write_summary=*/false, &a);
  RunRaid5Chaos(seed, /*write_summary=*/false, &b);
  EXPECT_TRUE(a == b) << "same seed produced different runs";
}

// ---------------------------------------------------------------------------
// Erasure (4+2) chaos: the stochastic mix plus TWO staggered mid-run
// fail-stops — the code's full fault budget held concurrently while service
// continues — with one hot spare, so one slot rebuilds and the other is
// served degraded through decode sets to the end of the run. A final
// explicit escalation past m proves reads through lost columns surface
// kUnrecoverable terminally instead of wedging.
// ---------------------------------------------------------------------------

void RunErasureChaos(uint64_t seed, bool write_summary, ChaosDigest* out) {
  constexpr uint32_t kDisks = 6;
  constexpr uint32_t kParityShards = 2;
  constexpr int kOps = 400;
  constexpr uint64_t kStepBudget = 30'000'000;

  InvariantAuditor auditor;
  MimdRaidOptions options =
      ChaosOptions(ArrayBackendKind::kErasure, seed, &auditor);
  options.aspect.ds = kDisks;
  options.aspect.dr = 1;
  options.aspect.dm = 1;
  options.parity_shards = kParityShards;
  // 2000 usable sectors per disk once the two parity shares are carved out.
  options.dataset_sectors = 8000;
  options.fault.latent_error_prob = 0.001;
  options.fault.transient_error_prob = 0.003;
  options.fault.timeout_prob = 0.002;
  MimdRaid array(options);
  Simulator& sim = array.sim();
  EcController& controller = array.ec();
  const EcLayout& layout = array.ec_layout();
  FaultInjector& injector = *array.fault_injector();

  Rng rng(seed * 37 + 11);
  const uint32_t victim_a = static_cast<uint32_t>(rng.UniformU64(kDisks));
  const uint32_t victim_b =
      (victim_a + 1 + static_cast<uint32_t>(rng.UniformU64(kDisks - 1))) %
      kDisks;
  const int failstop_a_at = kOps / 4;
  const int failstop_b_at = kOps / 2;

  for (int i = 0; i < 4; ++i) {
    const uint64_t lba = rng.UniformU64(layout.data_capacity_sectors() - 4);
    for (const EcFragment& f : layout.Map(lba, 1)) {
      injector.InjectLatentError(f.data_disk, f.disk_lba);
    }
  }

  std::vector<int> completions(kOps, 0);
  ChaosDigest digest;
  int done = 0;
  for (int i = 0; i < kOps; ++i) {
    if (i == failstop_a_at) {
      injector.FailStop(victim_a);  // detected on the next access
    }
    if (i == failstop_b_at) {
      injector.FailStop(victim_b);  // second concurrent loss: still within m
    }
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba =
        rng.UniformU64(layout.data_capacity_sectors() - sectors);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    controller.Submit(op, lba, sectors, [&, i](const IoResult& r) {
      ++completions[i];
      ++done;
      EXPECT_TRUE(r.status == IoStatus::kOk ||
                  r.status == IoStatus::kUnrecoverable)
          << "op " << i << " surfaced intermediate status "
          << IoStatusName(r.status);
      digest.completion_time_sum += static_cast<uint64_t>(r.completion_us.us());
      if (r.status == IoStatus::kOk) {
        ++digest.ok;
      } else {
        ++digest.unrecoverable;
      }
    });
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() +
                   SimDuration(static_cast<int64_t>(rng.UniformU64(20'000))));
    }
  }

  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(sim.Step()) << "simulator ran dry with ops outstanding";
    ASSERT_LT(++steps, kStepBudget) << "soak wedged: completions lost";
  }
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(completions[i], 1) << "op " << i;
  }

  // Idle scrub window, then stop the sweeper and drain everything: scrub
  // reads, the spare rebuild, queued rebuilds, deferred recovery.
  sim.RunUntil(sim.Now() + SimDuration(3'000'000));
  controller.StopScrub();
  steps = 0;
  while ((!controller.Idle() || controller.RebuildInProgress()) &&
         sim.Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(controller.Idle());

  // Escalate past the code's budget: fail live disks until m+1 slots are
  // concurrently down, then sweep reads across the dataset. Reads needing a
  // lost column must complete kUnrecoverable — terminally, without wedging.
  uint32_t failed_now = 0;
  for (uint32_t d = 0; d < kDisks; ++d) {
    failed_now += controller.IsFailed(SlotId(d)) ? 1u : 0u;
  }
  for (uint32_t d = 0; d < kDisks && failed_now <= kParityShards; ++d) {
    if (!controller.IsFailed(SlotId(d))) {
      ASSERT_TRUE(controller.FailDisk(SlotId(d)));
      ++failed_now;
    }
  }
  constexpr int kSweepOps = 80;
  int sweep_done = 0;
  int sweep_unrecoverable = 0;
  for (int i = 0; i < kSweepOps; ++i) {
    const uint64_t lba = (static_cast<uint64_t>(i) * 97) %
                         (layout.data_capacity_sectors() - 8);
    controller.Submit(DiskOp::kRead, lba, 8, [&](const IoResult& r) {
      ++sweep_done;
      EXPECT_TRUE(r.status == IoStatus::kOk ||
                  r.status == IoStatus::kUnrecoverable);
      sweep_unrecoverable += r.status == IoStatus::kUnrecoverable ? 1 : 0;
    });
  }
  steps = 0;
  while (sweep_done < kSweepOps) {
    ASSERT_TRUE(sim.Step()) << "simulator ran dry past the fault budget";
    ASSERT_LT(++steps, kStepBudget) << "beyond-m sweep wedged";
  }
  EXPECT_GT(sweep_unrecoverable, 0)
      << "m+1 concurrent losses surfaced no data loss";
  steps = 0;
  while (!controller.Idle() && sim.Step()) {
    ASSERT_LT(++steps, kStepBudget) << "final drain wedged";
  }

  controller.AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);

  const FaultRecoveryStats& fs = controller.fault_stats();
  EXPECT_GT(fs.TotalFaultsSeen(), 0u) << "chaos mix injected nothing";
  EXPECT_GT(fs.scrub_reads, 0u);
  digest.faults_seen = fs.TotalFaultsSeen();
  digest.retries = fs.retries_issued;
  digest.failovers = fs.failovers;

  if (write_summary) {
    AppendSummary("chaos seed " + std::to_string(seed) + " (ec 4+2+1)", fs,
                  injector.counters());
  }
  *out = digest;
}

TEST(ChaosSoak, ErasureSurvivesFaultMixWithTwoConcurrentFailStops) {
  if (!BackendSelected("ec")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosDigest digest;
    RunErasureChaos(seed, /*write_summary=*/true, &digest);
  }
}

TEST(ChaosSoak, ErasureRunIsDeterministicForSeed) {
  if (!BackendSelected("ec")) {
    GTEST_SKIP() << "MIMDRAID_CHAOS_BACKEND selects another backend";
  }
  const uint64_t seed = ChaosSeeds().front();
  ChaosDigest a;
  ChaosDigest b;
  RunErasureChaos(seed, /*write_summary=*/false, &a);
  RunErasureChaos(seed, /*write_summary=*/false, &b);
  EXPECT_TRUE(a == b) << "same seed produced different runs";
}

}  // namespace
}  // namespace mimdraid
