// Seeded chaos soak: a randomized fault mix (latent sector errors, transient
// errors, timeouts, an explicit fail-stop) against the mirrored array and the
// RAID-5 controller, with the runtime invariant auditor attached. Every
// submitted operation must complete exactly once with a terminal status
// (kOk or kUnrecoverable — never an intermediate fault status), the array
// must drain to a quiescent state that passes the auditor's terminal
// consistency check, and the whole run must be bit-for-bit reproducible for
// a given seed.
//
// Environment knobs (CI):
//   MIMDRAID_CHAOS_SEED     — run a single seed instead of the fixed three.
//   MIMDRAID_CHAOS_SUMMARY  — append per-seed fault/recovery counter summaries
//                             to this file (uploaded as a CI artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/raid5/raid5_controller.h"
#include "src/raid5/raid5_layout.h"
#include "src/sim/auditor.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint64_t kDefaultSeeds[] = {101, 202, 303};

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("MIMDRAID_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {std::begin(kDefaultSeeds), std::end(kDefaultSeeds)};
}

void AppendSummary(const std::string& header, const FaultRecoveryStats& fstats,
                   const FaultInjectorCounters& counters) {
  const char* path = std::getenv("MIMDRAID_CHAOS_SUMMARY");
  if (path == nullptr) {
    return;
  }
  std::ofstream out(path, std::ios::app);
  out << "=== " << header << " ===\n"
      << fstats.Summary()
      << "injected: latent_planted=" << counters.latent_errors_planted
      << " transient=" << counters.transient_errors
      << " timeouts=" << counters.timeouts
      << " media_error_reads=" << counters.media_error_reads
      << " failstop_rejections=" << counters.failstop_rejections
      << " write_repairs=" << counters.write_repairs << "\n";
}

// Compact digest of one run, for determinism checks: same seed, same digest.
struct ChaosDigest {
  uint64_t completion_time_sum = 0;
  uint64_t ok = 0;
  uint64_t unrecoverable = 0;
  uint64_t faults_seen = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;

  bool operator==(const ChaosDigest& o) const {
    return completion_time_sum == o.completion_time_sum && ok == o.ok &&
           unrecoverable == o.unrecoverable && faults_seen == o.faults_seen &&
           retries == o.retries && failovers == o.failovers;
  }
};

// ---------------------------------------------------------------------------
// Mirrored-array chaos.
// ---------------------------------------------------------------------------

void RunMirrorChaos(uint64_t seed, bool write_summary, ChaosDigest* out) {
  constexpr uint64_t kDataset = 2400;
  constexpr int kOps = 600;
  constexpr uint64_t kStepBudget = 30'000'000;

  Simulator sim;
  ArrayAspect aspect;
  aspect.ds = 2;
  aspect.dr = 1;
  aspect.dm = 2;
  const int d = aspect.TotalDisks();

  FaultInjectorOptions fopts;
  fopts.seed = seed;
  fopts.latent_error_prob = 0.002;
  fopts.transient_error_prob = 0.004;
  fopts.timeout_prob = 0.002;
  fopts.watchdog_timeout_us = 50'000;
  FaultInjector injector(fopts);

  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  for (int i = 0; i < d + 1; ++i) {  // one hot spare
    disks.push_back(std::make_unique<SimDisk>(
        &sim, MakeTestGeometry(), MakeTestSeekProfile(),
        DiskNoiseModel::None(), 61 + i, i * 777.0));
    preds.push_back(std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
    if (i < d) {
      dptr.push_back(disks.back().get());
      pptr.push_back(preds.back().get());
    }
  }
  ArrayLayout layout(&disks[0]->layout(), aspect, 16, kDataset);

  InvariantAuditor auditor;
  ArrayControllerOptions copts;
  copts.auditor = &auditor;
  copts.fault_injector = &injector;
  copts.disk_error_fail_threshold = 6;
  copts.scrub_interval_us = 100'000;
  ArrayController controller(&sim, dptr, pptr, &layout, copts);
  controller.AddSpare(disks[d].get(), preds[d].get());

  // Seed a few guaranteed latent errors so the scrubber and failover paths
  // have deterministic work even if the stochastic mix comes up quiet.
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    const uint64_t lba = rng.UniformU64(kDataset - 4);
    for (const ArrayFragment& f : layout.Map(lba, 1)) {
      injector.InjectLatentError(f.replicas[0].disk, f.replicas[0].lba);
    }
  }

  std::vector<int> completions(kOps, 0);
  ChaosDigest digest;
  int done = 0;
  for (int i = 0; i < kOps; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba = rng.UniformU64(kDataset - sectors);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    controller.Submit(op, lba, sectors, [&, i](const IoResult& r) {
      ++completions[i];
      ++done;
      EXPECT_TRUE(r.status == IoStatus::kOk ||
                  r.status == IoStatus::kUnrecoverable)
          << "op " << i << " surfaced intermediate status "
          << IoStatusName(r.status);
      digest.completion_time_sum += static_cast<uint64_t>(r.completion_us);
      if (r.status == IoStatus::kOk) {
        ++digest.ok;
      } else {
        ++digest.unrecoverable;
      }
    });
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() + static_cast<SimTime>(rng.UniformU64(20'000)));
    }
  }

  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(sim.Step()) << "simulator ran dry with ops outstanding";
    ASSERT_LT(++steps, kStepBudget) << "soak wedged: completions lost";
  }
  // Every op completed exactly once — no lost or duplicated completions.
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(completions[i], 1) << "op " << i;
  }

  // Let the idle array scrub for a while (latent-error repair), then stop the
  // sweeper and drain everything: foreground, propagations, spare rebuild.
  sim.RunUntil(sim.Now() + 3'000'000);
  controller.StopScrub();
  steps = 0;
  while ((!controller.Idle() || controller.RebuildInProgress()) &&
         sim.Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(controller.Idle());
  EXPECT_EQ(controller.TotalQueued(), 0u);
  EXPECT_EQ(controller.DelayedBacklog(), 0u);
  controller.AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);

  const FaultRecoveryStats& fs = controller.fault_stats();
  EXPECT_GT(fs.TotalFaultsSeen(), 0u) << "chaos mix injected nothing";
  EXPECT_GT(fs.scrub_reads, 0u);
  digest.faults_seen = fs.TotalFaultsSeen();
  digest.retries = fs.retries_issued;
  digest.failovers = fs.failovers;

  if (write_summary) {
    AppendSummary("chaos seed " + std::to_string(seed) + " (mirror 2x1x2+1)",
                  fs, injector.counters());
  }
  *out = digest;
}

TEST(ChaosSoak, MirroredArraySurvivesRandomFaultMix) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosDigest digest;
    RunMirrorChaos(seed, /*write_summary=*/true, &digest);
  }
}

TEST(ChaosSoak, MirrorRunIsDeterministicForSeed) {
  const uint64_t seed = ChaosSeeds().front();
  ChaosDigest a;
  ChaosDigest b;
  RunMirrorChaos(seed, /*write_summary=*/false, &a);
  RunMirrorChaos(seed, /*write_summary=*/false, &b);
  EXPECT_TRUE(a == b) << "same seed produced different runs";
}

// ---------------------------------------------------------------------------
// RAID-5 chaos: stochastic faults plus a mid-run fail-stop, then a rebuild.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, Raid5SurvivesFaultMixWithMidRunFailStop) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    constexpr int kOps = 400;
    constexpr uint64_t kStepBudget = 30'000'000;

    Simulator sim;
    FaultInjectorOptions fopts;
    fopts.seed = seed;
    fopts.latent_error_prob = 0.001;
    fopts.transient_error_prob = 0.003;
    fopts.timeout_prob = 0.002;
    fopts.watchdog_timeout_us = 50'000;
    FaultInjector injector(fopts);

    std::vector<std::unique_ptr<SimDisk>> disks;
    std::vector<std::unique_ptr<AccessPredictor>> preds;
    std::vector<SimDisk*> dptr;
    std::vector<AccessPredictor*> pptr;
    for (uint32_t i = 0; i < 5; ++i) {
      disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 17 + i, i * 500.0));
      preds.push_back(
          std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
      dptr.push_back(disks.back().get());
      pptr.push_back(preds.back().get());
    }
    Raid5Layout layout(5, 16, 2000);
    Raid5ControllerOptions copts;
    copts.fault_injector = &injector;
    Raid5Controller controller(&sim, dptr, pptr, &layout, copts);

    Rng rng(seed * 31 + 7);
    const uint32_t victim = static_cast<uint32_t>(rng.UniformU64(5));
    const int failstop_at = kOps / 3;

    std::vector<int> completions(kOps, 0);
    int done = 0;
    for (int i = 0; i < kOps; ++i) {
      if (i == failstop_at) {
        injector.FailStop(victim);  // detected on the next access
      }
      const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
      const uint64_t lba =
          rng.UniformU64(layout.data_capacity_sectors() - sectors);
      const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
      controller.Submit(op, lba, sectors, [&, i](const IoResult& r) {
        ++completions[i];
        ++done;
        EXPECT_TRUE(r.status == IoStatus::kOk ||
                    r.status == IoStatus::kUnrecoverable)
            << "op " << i << " surfaced intermediate status "
            << IoStatusName(r.status);
      });
      if (rng.Bernoulli(0.3)) {
        sim.RunUntil(sim.Now() + static_cast<SimTime>(rng.UniformU64(20'000)));
      }
    }

    uint64_t steps = 0;
    while (done < kOps) {
      ASSERT_TRUE(sim.Step()) << "simulator ran dry with ops outstanding";
      ASSERT_LT(++steps, kStepBudget) << "soak wedged: completions lost";
    }
    for (int i = 0; i < kOps; ++i) {
      ASSERT_EQ(completions[i], 1) << "op " << i;
    }
    steps = 0;
    while (!controller.Idle() && sim.Step()) {
      ASSERT_LT(++steps, kStepBudget) << "drain wedged";
    }
    EXPECT_TRUE(controller.Idle());

    // Consistency after rebuild: replace the fail-stopped disk and rebuild.
    // kOk when every row reconstructed; kUnrecoverable when rows were lost to
    // the stochastic fault mix — either way the rebuild must terminate.
    if (controller.IsFailed(victim)) {
      bool rebuilt = false;
      IoResult rebuild_result;
      controller.Rebuild(victim, [&](const IoResult& r) {
        rebuild_result = r;
        rebuilt = true;
      });
      steps = 0;
      while (!rebuilt) {
        ASSERT_TRUE(sim.Step());
        ASSERT_LT(++steps, kStepBudget) << "rebuild wedged";
      }
      EXPECT_TRUE(rebuild_result.status == IoStatus::kOk ||
                  rebuild_result.status == IoStatus::kUnrecoverable ||
                  rebuild_result.status == IoStatus::kDiskFailed);
      steps = 0;
      while (!controller.Idle() && sim.Step()) {
        ASSERT_LT(++steps, kStepBudget);
      }
    }

    const FaultRecoveryStats& fs = controller.fault_stats();
    EXPECT_GT(fs.TotalFaultsSeen(), 0u);
    AppendSummary("chaos seed " + std::to_string(seed) + " (raid5 5-disk)", fs,
                  injector.counters());
  }
}

}  // namespace
}  // namespace mimdraid
