// Randomized soak tests for the array controller, parameterized over aspect
// ratios and schedulers: every submitted operation must complete, background
// propagation must drain, and the controller's accounting must balance.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/auditor.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

struct SoakParam {
  int ds;
  int dr;
  int dm;
  SchedulerKind sched;
  bool foreground;
  double read_frac;
};

class ControllerSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(ControllerSoak, AllOpsCompleteAndDrain) {
  const SoakParam param = GetParam();
  Simulator sim;
  ArrayAspect aspect;
  aspect.ds = param.ds;
  aspect.dr = param.dr;
  aspect.dm = param.dm;
  const int d = aspect.TotalDisks();
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  for (int i = 0; i < d; ++i) {
    disks.push_back(std::make_unique<SimDisk>(
        &sim, MakeTestGeometry(), MakeTestSeekProfile(),
        DiskNoiseModel::None(), 33 + i, i * 431.0));
    preds.push_back(std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
    dptr.push_back(disks.back().get());
    pptr.push_back(preds.back().get());
  }
  const uint64_t dataset = 3200;
  ArrayLayout layout(&disks[0]->layout(), aspect, /*stripe_unit=*/16, dataset);
  // Run the whole soak under the invariant auditor: it observes every event,
  // disk op, scheduler pick, and queue/NVRAM transition without altering any
  // decision, and aborts the test on the first violation.
  InvariantAuditor auditor;
  ArrayControllerOptions copts;
  copts.scheduler = param.sched;
  copts.foreground_write_propagation = param.foreground;
  copts.delayed_table_limit = 50;
  copts.auditor = &auditor;
  ArrayController controller(&sim, dptr, pptr, &layout, copts);

  Rng rng(static_cast<uint64_t>(param.ds * 100 + param.dr * 10 + param.dm));
  constexpr int kOps = 400;
  int done = 0;
  SimTime last_completion;
  for (int i = 0; i < kOps; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba = rng.UniformU64(dataset - sectors);
    const DiskOp op =
        rng.Bernoulli(param.read_frac) ? DiskOp::kRead : DiskOp::kWrite;
    controller.Submit(op, lba, sectors, [&](const IoResult& r) {
      ++done;
      EXPECT_EQ(r.status, IoStatus::kOk);
      EXPECT_GE(r.completion_us, last_completion - SimDuration(1'000'000));
      last_completion = std::max(last_completion, r.completion_us);
    });
    // Interleave: sometimes let the array make progress mid-burst.
    if (rng.Bernoulli(0.3)) {
      sim.RunUntil(sim.Now() +
                   SimDuration(static_cast<int64_t>(rng.UniformU64(20'000))));
    }
  }
  while (done < kOps) {
    ASSERT_TRUE(sim.Step());
  }
  // Drain background propagation.
  while (!controller.Idle() && sim.Step()) {
  }
  EXPECT_TRUE(controller.Idle());
  EXPECT_EQ(controller.DelayedBacklog(), 0u);
  EXPECT_EQ(controller.TotalQueued(), 0u);
  controller.AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_run(), 0u);
  const ArrayStats& stats = controller.stats();
  EXPECT_EQ(stats.reads_completed + stats.writes_completed,
            static_cast<uint64_t>(kOps));
  if (param.foreground || aspect.ReplicasPerBlock() == 1) {
    EXPECT_EQ(stats.delayed_writes_completed + stats.delayed_writes_forced, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ControllerSoak,
    ::testing::Values(
        SoakParam{1, 1, 1, SchedulerKind::kFcfs, false, 0.5},
        SoakParam{2, 1, 1, SchedulerKind::kLook, false, 0.5},
        SoakParam{2, 1, 1, SchedulerKind::kClook, false, 0.7},
        SoakParam{1, 2, 1, SchedulerKind::kRlook, false, 0.5},
        SoakParam{1, 2, 1, SchedulerKind::kRsatf, false, 0.3},
        SoakParam{2, 2, 1, SchedulerKind::kRsatf, false, 0.5},
        SoakParam{2, 2, 1, SchedulerKind::kRsatf, true, 0.5},
        SoakParam{1, 1, 2, SchedulerKind::kSatf, false, 0.5},
        SoakParam{1, 1, 3, SchedulerKind::kSatf, false, 0.2},
        SoakParam{1, 2, 2, SchedulerKind::kRsatf, false, 0.5},
        SoakParam{1, 2, 2, SchedulerKind::kRsatf, true, 0.4},
        SoakParam{2, 1, 2, SchedulerKind::kSstf, false, 0.6}),
    [](const auto& suite_info) {
      const SoakParam& p = suite_info.param;
      return std::to_string(p.ds) + "x" + std::to_string(p.dr) + "x" +
             std::to_string(p.dm) + "_" +
             SchedulerKindName(p.sched) + (p.foreground ? "_fg" : "_bg");
    });

}  // namespace
}  // namespace mimdraid
