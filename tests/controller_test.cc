#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

// A small rig with explicit ownership of all moving parts.
struct Rig {
  Rig(int ds, int dr, int dm, ArrayControllerOptions copts = {},
      uint64_t dataset = 3000) {
    ArrayAspect aspect;
    aspect.ds = ds;
    aspect.dr = dr;
    aspect.dm = dm;
    const int d = aspect.TotalDisks();
    for (int i = 0; i < d; ++i) {
      disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), /*seed=*/100 + i,
          /*spindle_phase_us=*/i * 700.0));
      predictors.push_back(
          std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
    }
    layout = std::make_unique<ArrayLayout>(&disks[0]->layout(), aspect,
                                           /*stripe_unit_sectors=*/16,
                                           dataset);
    std::vector<SimDisk*> dptr;
    std::vector<AccessPredictor*> pptr;
    for (int i = 0; i < d; ++i) {
      dptr.push_back(disks[i].get());
      pptr.push_back(predictors[i].get());
    }
    controller = std::make_unique<ArrayController>(&sim, dptr, pptr,
                                                   layout.get(), copts);
  }

  SimTime Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    SimTime completion(-1);
    controller->Submit(op, lba, sectors,
                       [&](const IoResult& r) { completion = r.completion_us; });
    while (completion < SimTime(0)) {
      EXPECT_TRUE(sim.Step());
    }
    return completion;
  }

  void Drain() {
    while (!controller->Idle() && sim.Step()) {
    }
  }

  Simulator sim;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> predictors;
  std::unique_ptr<ArrayLayout> layout;
  std::unique_ptr<ArrayController> controller;
};

TEST(Controller, SingleReadCompletes) {
  Rig rig(1, 1, 1);
  const SimTime c = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_GT(c, SimTime(0));
  EXPECT_EQ(rig.controller->stats().reads_completed, 1u);
}

TEST(Controller, StripedReadTouchesCorrectDisk) {
  Rig rig(2, 1, 1);
  rig.Do(DiskOp::kRead, 16, 8);  // unit 1 -> disk 1
  EXPECT_EQ(rig.disks[1]->ops_completed(), 1u);
  EXPECT_EQ(rig.disks[0]->ops_completed(), 0u);
}

TEST(Controller, CrossUnitReadFansOut) {
  Rig rig(2, 1, 1);
  rig.Do(DiskOp::kRead, 10, 16);
  EXPECT_EQ(rig.disks[0]->ops_completed(), 1u);
  EXPECT_EQ(rig.disks[1]->ops_completed(), 1u);
}

TEST(Controller, WriteSpawnsDelayedReplicas) {
  Rig rig(1, 2, 1);
  rig.Do(DiskOp::kWrite, 0, 8);
  // The first copy is written; the second is pending.
  EXPECT_EQ(rig.controller->DelayedBacklog(), 1u);
  rig.Drain();
  EXPECT_EQ(rig.controller->DelayedBacklog(), 0u);
  EXPECT_EQ(rig.controller->stats().delayed_writes_completed, 1u);
  EXPECT_EQ(rig.disks[0]->ops_completed(), 2u);
}

TEST(Controller, ForegroundModeWritesAllReplicasBeforeCompleting) {
  ArrayControllerOptions copts;
  copts.foreground_write_propagation = true;
  Rig rig(1, 2, 1, copts);
  rig.Do(DiskOp::kWrite, 0, 8);
  EXPECT_EQ(rig.controller->DelayedBacklog(), 0u);
  EXPECT_EQ(rig.disks[0]->ops_completed(), 2u);
}

TEST(Controller, MirrorWriteCompletesAfterFirstCopy) {
  Rig rig(1, 1, 2);
  rig.Do(DiskOp::kWrite, 0, 8);
  // One disk wrote, the other propagation is pending.
  EXPECT_EQ(rig.controller->DelayedBacklog(), 1u);
  EXPECT_EQ(rig.disks[0]->ops_completed() + rig.disks[1]->ops_completed(), 1u);
  rig.Drain();
  EXPECT_EQ(rig.disks[0]->ops_completed() + rig.disks[1]->ops_completed(), 2u);
}

TEST(Controller, MirrorReadUsesSingleDisk) {
  Rig rig(1, 1, 2);
  rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(rig.disks[0]->ops_completed() + rig.disks[1]->ops_completed(), 1u);
}

TEST(Controller, ReadAfterWriteIsOrderedAndConsistent) {
  Rig rig(1, 2, 1);
  SimTime write_done(-1);
  SimTime read_done(-1);
  rig.controller->Submit(DiskOp::kWrite, 0, 8,
                         [&](const IoResult& r) { write_done = r.completion_us; });
  rig.controller->Submit(DiskOp::kRead, 0, 8,
                         [&](const IoResult& r) { read_done = r.completion_us; });
  while (read_done < SimTime(0)) {
    ASSERT_TRUE(rig.sim.Step());
  }
  EXPECT_GE(read_done, write_done);
  EXPECT_EQ(rig.controller->stats().parked_reads, 1u);
}

TEST(Controller, ReadIgnoresStaleReplica) {
  Rig rig(1, 2, 1);
  rig.Do(DiskOp::kWrite, 0, 8);
  ASSERT_EQ(rig.controller->DelayedBacklog(), 1u);
  // Immediately read the same block many times: all reads must be served by
  // the single clean replica even though RSATF would love the other one.
  // (The delayed propagation may complete part-way through; that is fine.)
  for (int i = 0; i < 4; ++i) {
    rig.Do(DiskOp::kRead, 0, 8);
  }
  EXPECT_EQ(rig.controller->stats().reads_completed, 4u);
}

TEST(Controller, DelayedWritesWaitForIdle) {
  Rig rig(1, 2, 1);
  // Queue a burst of reads; delayed propagation must not jump ahead of them.
  SimTime write_done(-1);
  rig.controller->Submit(DiskOp::kWrite, 0, 8,
                         [&](const IoResult& r) { write_done = r.completion_us; });
  int reads_left = 5;
  for (int i = 0; i < 5; ++i) {
    rig.controller->Submit(DiskOp::kRead, 160 + 16 * i, 8,
                           [&](const IoResult&) { --reads_left; });
  }
  while (reads_left > 0) {
    ASSERT_TRUE(rig.sim.Step());
  }
  // All foreground work done; propagation may still be pending or just now
  // getting its turn.
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().delayed_writes_completed, 1u);
}

TEST(Controller, BackToBackWritesDiscardSupersededPropagation) {
  Rig rig(1, 2, 1);
  // Submit both writes concurrently so the first write's pending propagation
  // is still queued (the disk is busy with the second foreground write) when
  // the second write supersedes it.
  int done = 0;
  rig.controller->Submit(DiskOp::kWrite, 0, 8, [&](const IoResult&) { ++done; });
  rig.controller->Submit(DiskOp::kWrite, 0, 8, [&](const IoResult&) { ++done; });
  while (done < 2) {
    ASSERT_TRUE(rig.sim.Step());
  }
  EXPECT_GE(rig.controller->stats().delayed_writes_discarded, 1u);
  rig.Drain();
  EXPECT_EQ(rig.controller->DelayedBacklog(), 0u);
}

TEST(Controller, DelayedTableLimitForcesWritesOut) {
  ArrayControllerOptions copts;
  copts.delayed_table_limit = 4;
  Rig rig(1, 2, 1, copts);
  // Saturate with writes to distinct blocks; backlog must stay bounded near
  // the limit as propagation is forced into the foreground.
  int remaining = 40;
  for (int i = 0; i < 40; ++i) {
    rig.controller->Submit(DiskOp::kWrite, static_cast<uint64_t>(i) * 16, 8,
                           [&](const IoResult&) { --remaining; });
  }
  while (remaining > 0) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_GT(rig.controller->stats().delayed_writes_forced, 0u);
  EXPECT_EQ(rig.controller->DelayedBacklog(), 0u);
}

TEST(Controller, DuplicatedMirrorReadsCancelled) {
  Rig rig(1, 1, 2);
  // Keep both disks busy, then issue a read: it must be duplicated and one
  // copy cancelled.
  int done = 0;
  rig.controller->Submit(DiskOp::kWrite, 16, 8, [&](const IoResult&) { ++done; });
  rig.controller->Submit(DiskOp::kWrite, 32, 8, [&](const IoResult&) { ++done; });
  rig.controller->Submit(DiskOp::kRead, 0, 8, [&](const IoResult&) { ++done; });
  while (done < 3) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_GE(rig.controller->stats().read_duplicates_cancelled, 1u);
}

TEST(Controller, ManyConcurrentOpsAllComplete) {
  Rig rig(2, 2, 1, {}, 4000);
  int done = 0;
  constexpr int kOps = 200;
  Rng rng(5);
  for (int i = 0; i < kOps; ++i) {
    const uint64_t lba = rng.UniformU64(4000 - 16);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    rig.controller->Submit(op, lba, 8, [&](const IoResult&) { ++done; });
  }
  while (done < kOps) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_TRUE(rig.controller->Idle());
  EXPECT_EQ(rig.controller->stats().reads_completed +
                rig.controller->stats().writes_completed,
            static_cast<uint64_t>(kOps));
}

TEST(Controller, RecalibrationIssuesMaintenanceReads) {
  ArrayControllerOptions copts;
  copts.recalibration_interval_us = SimDuration(50'000);
  Rig rig(1, 1, 1, copts);
  // Oracle predictors are not HeadPositionPredictors, so maintenance entries
  // are not generated; swap in a calibrated-style predictor.
  // (Covered more fully in core_test; here we just ensure the timer ticks
  // without disturbing normal traffic.)
  rig.Do(DiskOp::kRead, 0, 8);
  rig.sim.RunUntil(rig.sim.Now() + SimDuration(200'000));
  EXPECT_EQ(rig.controller->stats().maintenance_reads, 0u);
}

TEST(Controller, WriteThenDistantReadKeepsLatencyBounded) {
  Rig rig(1, 2, 1);
  const SimTime c1 = rig.Do(DiskOp::kWrite, 0, 8);
  const SimTime c2 = rig.Do(DiskOp::kRead, 2000, 8);
  EXPECT_GT(c2, c1);
  // Sanity bound: one access cannot exceed a few rotations + max seek.
  EXPECT_LT(c2 - c1, SimDuration(30'000));
}

}  // namespace
}  // namespace mimdraid
