#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/model/analytic.h"
#include "src/workload/synthetic.h"

namespace mimdraid {
namespace {

MimdRaidOptions BaseOptions(int ds, int dr, int dm,
                            SchedulerKind sched = SchedulerKind::kRsatf) {
  MimdRaidOptions o;
  o.aspect.ds = ds;
  o.aspect.dr = dr;
  o.aspect.dm = dm;
  o.scheduler = sched;
  o.dataset_sectors = 2'000'000;  // ~1 GB: fits every aspect under test
  o.seed = 77;
  return o;
}

ClosedLoopOptions ReadLoop(uint32_t outstanding, uint64_t ops = 1500) {
  ClosedLoopOptions c;
  c.outstanding = outstanding;
  c.read_frac = 1.0;
  c.sectors = 1;
  c.warmup_ops = 100;
  c.measure_ops = ops;
  return c;
}

TEST(MimdRaid, ConstructsAllDegenerateShapes) {
  for (auto [ds, dr, dm] : {std::tuple{1, 1, 1}, {4, 1, 1}, {1, 1, 4},
                            {2, 2, 1}, {2, 1, 2}, {1, 2, 2}}) {
    MimdRaid array(BaseOptions(ds, dr, dm));
    EXPECT_EQ(array.num_disks(), static_cast<size_t>(ds * dr * dm));
  }
}

TEST(MimdRaid, SingleDiskReadLatencyIsPlausible) {
  MimdRaid array(BaseOptions(1, 1, 1, SchedulerKind::kFcfs));
  const RunResult r = RunClosedLoopOnArray(array, ReadLoop(1, 800));
  // One random read: overhead (~350) + seek + ~R/2 rotation + transfer.
  EXPECT_GT(r.latency.MeanUs(), 3000.0);
  EXPECT_LT(r.latency.MeanUs(), 9000.0);
}

TEST(MimdRaid, RotationalReplicationCutsRotationalDelay) {
  MimdRaid plain(BaseOptions(1, 1, 1, SchedulerKind::kSatf));
  MimdRaid replicated(BaseOptions(1, 2, 1, SchedulerKind::kRsatf));
  const RunResult a = RunClosedLoopOnArray(plain, ReadLoop(1));
  const RunResult b = RunClosedLoopOnArray(replicated, ReadLoop(1));
  // Two evenly spaced replicas save ~R/4 = 1.5 ms on average.
  EXPECT_LT(b.latency.MeanUs(), a.latency.MeanUs() - 700.0);
}

TEST(MimdRaid, StripingCutsSeek) {
  MimdRaid one(BaseOptions(1, 1, 1, SchedulerKind::kSatf));
  MimdRaid four(BaseOptions(4, 1, 1, SchedulerKind::kSatf));
  const RunResult a = RunClosedLoopOnArray(one, ReadLoop(1));
  const RunResult b = RunClosedLoopOnArray(four, ReadLoop(1));
  EXPECT_LT(b.latency.MeanUs(), a.latency.MeanUs());
}

TEST(MimdRaid, SrArrayBeatsPureStripingReadOnly) {
  // Six disks, read-only, low load: the paper's headline effect.
  MimdRaid stripe(BaseOptions(6, 1, 1, SchedulerKind::kSatf));
  MimdRaid sr(BaseOptions(2, 3, 1, SchedulerKind::kRsatf));
  const RunResult a = RunClosedLoopOnArray(stripe, ReadLoop(2));
  const RunResult b = RunClosedLoopOnArray(sr, ReadLoop(2));
  EXPECT_LT(b.latency.MeanUs(), a.latency.MeanUs());
}

TEST(MimdRaid, LatencyModelTracksMeasurement) {
  // Equation (4) is an acknowledged approximation (it divides seek *time* by
  // Ds although short seeks are settle-dominated), so we test what the paper
  // relies on: the model ranks aspect ratios the same way measurement does,
  // and its absolute prediction is within a factor of two of measurement.
  // A larger footprint keeps the seek term out of the settle-dominated
  // regime, where the aspect ratios are hard to distinguish.
  constexpr uint64_t kDataset = 8'000'000;
  MimdRaidOptions probe = BaseOptions(1, 1, 1);
  const ModelDiskParams params =
      ModelParamsForDataset(MakeSt39133Geometry(), probe.profile, kDataset);
  const DiskNoiseModel noise = DiskNoiseModel::None();
  const double overhead = noise.overhead_mean_us + noise.post_overhead_mean_us;

  struct Shape {
    int ds;
    int dr;
  };
  std::vector<double> measured;
  std::vector<double> modeled;
  for (const Shape s : {Shape{6, 1}, Shape{2, 3}, Shape{1, 6}}) {
    MimdRaidOptions opts = BaseOptions(s.ds, s.dr, 1);
    opts.dataset_sectors = kDataset;
    MimdRaid array(opts);
    measured.push_back(
        RunClosedLoopOnArray(array, ReadLoop(1, 1200)).latency.MeanUs());
    modeled.push_back(
        SrReadLatencyUs(params.max_seek_us, params.rotation_us, s.ds, s.dr) +
        overhead);
  }
  for (size_t i = 0; i < measured.size(); ++i) {
    EXPECT_GT(measured[i], modeled[i] * 0.5) << i;
    EXPECT_LT(measured[i], modeled[i] * 2.0) << i;
    for (size_t j = i + 1; j < measured.size(); ++j) {
      // Same winner under model and measurement.
      EXPECT_EQ(modeled[i] < modeled[j], measured[i] < measured[j])
          << i << " vs " << j;
    }
  }
}

TEST(MimdRaid, ThroughputScalesWithDisks) {
  MimdRaid two(BaseOptions(2, 1, 1, SchedulerKind::kSatf));
  MimdRaid six(BaseOptions(6, 1, 1, SchedulerKind::kSatf));
  ClosedLoopOptions loop = ReadLoop(16, 2500);
  const RunResult a = RunClosedLoopOnArray(two, loop);
  const RunResult b = RunClosedLoopOnArray(six, loop);
  EXPECT_GT(b.iops, a.iops * 1.8);
}

TEST(MimdRaid, WritesOnReplicatedArrayStillComplete) {
  MimdRaid array(BaseOptions(2, 2, 1));
  ClosedLoopOptions loop;
  loop.outstanding = 4;
  loop.read_frac = 0.5;
  loop.sectors = 8;
  loop.warmup_ops = 50;
  loop.measure_ops = 800;
  const RunResult r = RunClosedLoopOnArray(array, loop);
  EXPECT_EQ(r.latency.count(), 800u);
  EXPECT_GT(r.iops, 0.0);
}

TEST(MimdRaid, ForegroundPropagationSlowerThanBackground) {
  MimdRaidOptions fg = BaseOptions(2, 2, 1);
  fg.foreground_write_propagation = true;
  MimdRaidOptions bg = BaseOptions(2, 2, 1);
  MimdRaid fg_array(fg);
  MimdRaid bg_array(bg);
  ClosedLoopOptions loop;
  loop.outstanding = 1;
  loop.read_frac = 0.0;  // pure writes
  loop.sectors = 8;
  loop.warmup_ops = 50;
  loop.measure_ops = 600;
  const RunResult a = RunClosedLoopOnArray(fg_array, loop);
  const RunResult b = RunClosedLoopOnArray(bg_array, loop);
  EXPECT_GT(a.latency.MeanUs(), b.latency.MeanUs());
}

TEST(MimdRaid, CalibratedPredictorEndToEnd) {
  // Full software pipeline on noisy disks with periodic re-calibration: the
  // Table 2 setting. Misses must stay rare and the run must behave.
  MimdRaidOptions options = BaseOptions(1, 2, 1);
  options.noise = DiskNoiseModel::Prototype();
  options.use_oracle_predictor = false;
  options.recalibration_interval_us = SimDuration(2'000'000);
  options.calibration.seek.num_distances = 10;
  MimdRaid array(options);
  const RunResult r = RunClosedLoopOnArray(array, ReadLoop(2, 1200));
  EXPECT_EQ(r.latency.count(), 1200u);
  // The 1x2 SR-Array spans two disks; aggregate both predictors.
  uint64_t predictions = 0;
  uint64_t misses = 0;
  for (size_t i = 0; i < array.num_disks(); ++i) {
    auto& predictor =
        dynamic_cast<HeadPositionPredictor&>(array.predictor(i));
    predictions += predictor.stats().predictions;
    misses += predictor.stats().misses;
  }
  EXPECT_GT(predictions, 1000u);
  EXPECT_LT(static_cast<double>(misses) / static_cast<double>(predictions),
            0.05);
}

TEST(Experiment, ModelParamsReflectFootprint) {
  const DiskGeometry geo = MakeSt39133Geometry();
  const SeekProfile profile = MakeSt39133SeekProfile();
  const ModelDiskParams small =
      ModelParamsForDataset(geo, profile, 1'000'000);
  const ModelDiskParams large =
      ModelParamsForDataset(geo, profile, 16'000'000);
  EXPECT_LT(small.max_seek_us, large.max_seek_us);
  EXPECT_DOUBLE_EQ(small.rotation_us, 6000.0);
}

TEST(Experiment, TraceRunsOnArray) {
  SyntheticTraceParams params = CelloBaseParams(/*duration_s=*/1200, 11);
  params.dataset_sectors = 2'000'000;
  params.io_per_s = 10.0;
  const Trace trace = GenerateSyntheticTrace(params);
  MimdRaid array(BaseOptions(2, 2, 1));
  TracePlayerOptions popt;
  popt.warmup_ios = 20;
  const RunResult r = RunTraceOnArray(array, trace, popt);
  EXPECT_EQ(r.completed, trace.records.size());
  EXPECT_FALSE(r.saturated);
  EXPECT_GT(r.latency.MeanUs(), 0.0);
}

TEST(Experiment, CacheAbsorbsHotReads) {
  SyntheticTraceParams params = TpccParams(/*duration_s=*/30, 13);
  params.dataset_sectors = 2'000'000;
  params.io_per_s = 200.0;
  const Trace trace = GenerateSyntheticTrace(params);
  MimdRaid cold(BaseOptions(2, 1, 1));
  MimdRaid warm(BaseOptions(2, 1, 1));
  TracePlayerOptions popt;
  popt.warmup_ios = 20;
  const RunResult uncached = RunTraceOnArray(cold, trace, popt);
  const RunResult cached =
      RunTraceWithCache(warm, trace, /*cache_bytes=*/256ull << 20, 50.0, popt);
  EXPECT_LT(cached.latency.MeanUs(), uncached.latency.MeanUs());
}

TEST(Experiment, DeterministicRuns) {
  MimdRaid a(BaseOptions(2, 2, 1));
  MimdRaid b(BaseOptions(2, 2, 1));
  const RunResult ra = RunClosedLoopOnArray(a, ReadLoop(4, 600));
  const RunResult rb = RunClosedLoopOnArray(b, ReadLoop(4, 600));
  EXPECT_DOUBLE_EQ(ra.latency.MeanUs(), rb.latency.MeanUs());
  EXPECT_DOUBLE_EQ(ra.iops, rb.iops);
}

}  // namespace
}  // namespace mimdraid
