// The general (k+m) erasure backend, bottom up: GF(2^8) field algebra and
// matrix inversion, the Cauchy codec's round-trip and any-k-subset
// decodability (the property the controller's availability-driven decode
// sets rely on), the rotated layout's geometry, and the controller's
// distinctive behaviors over the DriveSet engine — degraded reads under any
// m concurrent failures, multi-slot rebuild through queued spare promotions,
// and the per-request RMW-vs-reconstruct write-plan argmin. The byte-level
// codec tests are the data-correctness anchor for the simulator paths (the
// sim moves no user bytes; it moves the codec's plans).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/obs/stats_registry.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint64_t kStepBudget = 30'000'000;

// ---------------------------------------------------------------------------
// GF(2^8) algebra.
// ---------------------------------------------------------------------------

TEST(Gf256Test, FieldAlgebraHolds) {
  // Multiplicative identities and inverses over the whole field.
  for (uint32_t a = 1; a < 256; ++a) {
    const uint8_t x = static_cast<uint8_t>(a);
    EXPECT_EQ(gf256::Mul(x, 1), x);
    EXPECT_EQ(gf256::Mul(x, gf256::Inv(x)), 1) << "a=" << a;
    EXPECT_EQ(gf256::Div(x, x), 1);
    EXPECT_EQ(gf256::Mul(x, 0), 0);
  }
  // Commutativity, associativity, and distributivity on a pseudorandom
  // sample (exhaustive over triples would be 2^24 checks).
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.UniformU64(256));
    const uint8_t b = static_cast<uint8_t>(rng.UniformU64(256));
    const uint8_t c = static_cast<uint8_t>(rng.UniformU64(256));
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
    EXPECT_EQ(gf256::Mul(a, gf256::Mul(b, c)),
              gf256::Mul(gf256::Mul(a, b), c));
    EXPECT_EQ(gf256::Mul(a, gf256::Add(b, c)),
              gf256::Add(gf256::Mul(a, b), gf256::Mul(a, c)));
    if (b != 0) {
      EXPECT_EQ(gf256::Mul(gf256::Div(a, b), b), a);
    }
  }
}

TEST(Gf256Test, MatrixInvertRoundTripAndSingularDetection) {
  // A Cauchy-derived square matrix inverts, and M * M^-1 == I.
  const EcCodec codec(4, 3);
  GfMatrix square(4, 4);
  const uint32_t picked[] = {0, 2, 4, 6};  // mixed data/parity rows
  for (uint32_t r = 0; r < 4; ++r) {
    for (uint32_t c = 0; c < 4; ++c) {
      square.set(r, c, codec.encode_matrix().at(picked[r], c));
    }
  }
  GfMatrix inverse(4, 4);
  ASSERT_TRUE(square.Invert(&inverse));
  const GfMatrix product = square.Mul(inverse);
  const GfMatrix identity = GfMatrix::Identity(4);
  for (uint32_t r = 0; r < 4; ++r) {
    for (uint32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(product.at(r, c), identity.at(r, c)) << r << "," << c;
    }
  }
  // Duplicated rows are singular and must be reported, not mis-solved.
  GfMatrix singular = square;
  for (uint32_t c = 0; c < 4; ++c) {
    singular.set(3, c, singular.at(0, c));
  }
  GfMatrix unused(4, 4);
  EXPECT_FALSE(singular.Invert(&unused));
}

// ---------------------------------------------------------------------------
// Codec round-trip.
// ---------------------------------------------------------------------------

std::vector<std::vector<uint8_t>> RandomShards(uint32_t count, size_t len,
                                               Rng* rng) {
  std::vector<std::vector<uint8_t>> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) {
      b = static_cast<uint8_t>(rng->UniformU64(256));
    }
  }
  return shards;
}

TEST(EcCodecTest, EncodeReconstructRoundTripsEveryErasurePatternUpToM) {
  constexpr size_t kShardLen = 64;
  const std::pair<uint32_t, uint32_t> widths[] = {{2, 2}, {4, 2}, {3, 3},
                                                  {5, 1}};
  Rng rng(11);
  for (const auto& [k, m] : widths) {
    SCOPED_TRACE("k=" + std::to_string(k) + " m=" + std::to_string(m));
    const EcCodec codec(k, m);
    const uint32_t n = k + m;
    const std::vector<std::vector<uint8_t>> data =
        RandomShards(k, kShardLen, &rng);
    std::vector<std::vector<uint8_t>> parity;
    codec.Encode(data, &parity);
    ASSERT_EQ(parity.size(), m);

    std::vector<std::vector<uint8_t>> whole = data;
    whole.insert(whole.end(), parity.begin(), parity.end());

    // Every erasure pattern of 1..m shards, data and parity in any mix,
    // must reconstruct the stripe exactly.
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      const int erased = __builtin_popcount(mask);
      if (erased == 0 || erased > static_cast<int>(m)) {
        continue;
      }
      std::vector<std::vector<uint8_t>> shards = whole;
      std::vector<bool> present(n, true);
      for (uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          shards[i].clear();
          present[i] = false;
        }
      }
      ASSERT_TRUE(codec.Reconstruct(&shards, present)) << "mask=" << mask;
      for (uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(shards[i], whole[i]) << "mask=" << mask << " shard=" << i;
      }
    }
  }
}

TEST(EcCodecTest, EveryKSubsetOfColumnsDecodes) {
  // The Cauchy guarantee the controller's decode-set selection leans on:
  // *any* k columns suffice, so availability alone picks them.
  const std::pair<uint32_t, uint32_t> widths[] = {{4, 2}, {3, 3}, {2, 2}};
  for (const auto& [k, m] : widths) {
    const EcCodec codec(k, m);
    const uint32_t n = k + m;
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (__builtin_popcount(mask) != static_cast<int>(k)) {
        continue;
      }
      std::vector<uint32_t> cols;
      for (uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          cols.push_back(i);
        }
      }
      EXPECT_TRUE(codec.CanDecodeFrom(cols))
          << "k=" << k << " m=" << m << " mask=" << mask;
    }
  }
}

TEST(EcCodecTest, ReconstructRefusesBeyondMErasures) {
  const EcCodec codec(4, 2);
  Rng rng(13);
  std::vector<std::vector<uint8_t>> data = RandomShards(4, 32, &rng);
  std::vector<std::vector<uint8_t>> parity;
  codec.Encode(data, &parity);
  std::vector<std::vector<uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(6, true);
  for (uint32_t i = 0; i < 3; ++i) {  // m+1 = 3 losses: the stripe is gone
    shards[i].clear();
    present[i] = false;
  }
  EXPECT_FALSE(codec.Reconstruct(&shards, present));
}

// ---------------------------------------------------------------------------
// Rotated layout geometry.
// ---------------------------------------------------------------------------

TEST(EcLayoutTest, RotationInverseAndMapGeometry) {
  const EcLayout layout(/*num_disks=*/6, /*data_shards=*/4,
                        /*stripe_unit_sectors=*/16, /*per_disk_sectors=*/320);
  EXPECT_EQ(layout.parity_shards(), 2u);
  EXPECT_EQ(layout.num_rows(), 20u);
  EXPECT_EQ(layout.data_capacity_sectors(), 20u * 4u * 16u);

  for (uint32_t row = 0; row < layout.num_rows(); ++row) {
    // Every disk plays exactly one position per row, and the inverse map
    // agrees.
    std::vector<bool> seen(6, false);
    for (uint32_t pos = 0; pos < 6; ++pos) {
      const uint32_t disk = layout.DiskOfPosition(row, pos);
      EXPECT_FALSE(seen[disk]);
      seen[disk] = true;
      EXPECT_EQ(layout.PositionOfDisk(row, disk), pos);
    }
    // The pattern rotates one disk per row.
    EXPECT_EQ(layout.DataDiskOf(row, 0), row % 6);
  }

  // Map splits on unit boundaries, lands each unit on its shard's disk at
  // the row's offset, and covers the request exactly.
  const std::vector<EcFragment> frags = layout.Map(60, 16);
  ASSERT_EQ(frags.size(), 2u);
  uint64_t covered = 0;
  for (const EcFragment& f : frags) {
    covered += f.sectors;
    EXPECT_EQ(f.data_disk, layout.DataDiskOf(f.row, f.shard_index));
    const uint64_t unit_index = f.logical_lba / 16;
    EXPECT_EQ(f.row, unit_index / 4);
    EXPECT_EQ(f.shard_index, unit_index % 4);
    EXPECT_EQ(f.disk_lba,
              static_cast<uint64_t>(f.row) * 16 + f.logical_lba % 16);
  }
  EXPECT_EQ(covered, 16u);

  // RowPeers excludes exactly the named disk.
  const std::vector<uint32_t> peers = layout.RowPeers(3, 2);
  EXPECT_EQ(peers.size(), 5u);
  for (const uint32_t p : peers) {
    EXPECT_NE(p, 2u);
  }
}

// ---------------------------------------------------------------------------
// Controller behaviors over the engine.
// ---------------------------------------------------------------------------

struct EcRig {
  uint32_t disks = 6;
  uint32_t parity_shards = 2;
  uint64_t dataset = 2400;
  bool faults = false;
  uint32_t hot_spares = 0;
  InvariantAuditor* auditor = nullptr;
  uint64_t seed = 5;
};

std::unique_ptr<MimdRaid> MakeEc(const EcRig& rig) {
  MimdRaidOptions options;
  options.backend = ArrayBackendKind::kErasure;
  options.aspect.ds = static_cast<int>(rig.disks);
  options.aspect.dr = 1;
  options.aspect.dm = 1;
  options.parity_shards = rig.parity_shards;
  options.scheduler = SchedulerKind::kSatf;
  options.dataset_sectors = rig.dataset;
  options.stripe_unit_sectors = 16;
  options.geometry = MakeTestGeometry();
  options.profile = MakeTestSeekProfile();
  options.seed = rig.seed;
  options.enable_fault_injection = rig.faults;
  options.fault.seed = rig.seed;
  options.hot_spares = rig.hot_spares;
  options.auditor = rig.auditor;
  return std::make_unique<MimdRaid>(options);
}

// Submits `ops` fixed-stride reads across the dataset and requires every one
// to complete with `expected`.
void RunReadsExpecting(MimdRaid* array, int ops, IoStatus expected) {
  int done = 0;
  const uint64_t dataset = array->backend().dataset_sectors();
  for (int i = 0; i < ops; ++i) {
    const uint64_t lba = (static_cast<uint64_t>(i) * 37) % (dataset - 8);
    array->backend().Submit(DiskOp::kRead, lba, 8,
                            [&done, expected, i](const IoResult& r) {
                              ++done;
                              EXPECT_EQ(r.status, expected) << "read " << i;
                            });
  }
  uint64_t steps = 0;
  while (done < ops) {
    ASSERT_TRUE(array->sim().Step()) << "simulator ran dry";
    ASSERT_LT(++steps, kStepBudget) << "reads wedged";
  }
}

void Drain(MimdRaid* array) {
  array->backend().StopScrub();
  uint64_t steps = 0;
  while ((!array->backend().Idle() || array->backend().RebuildInProgress()) &&
         array->sim().Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
  EXPECT_TRUE(array->backend().Idle());
}

TEST(EcControllerTest, AnyTwoConcurrentFailuresServeDegradedReads) {
  // The acceptance shape: a 4+2 array, every one of the C(6,2) failure
  // pairs, reads stay kOk throughout (decoded through the surviving k
  // columns) and the auditor's fault conservation holds.
  for (uint32_t a = 0; a < 6; ++a) {
    for (uint32_t b = a + 1; b < 6; ++b) {
      SCOPED_TRACE("failed pair " + std::to_string(a) + "," +
                   std::to_string(b));
      InvariantAuditor auditor;
      EcRig rig;
      rig.auditor = &auditor;
      auto array = MakeEc(rig);
      ASSERT_TRUE(array->backend().FailDisk(SlotId(a)));
      ASSERT_TRUE(array->backend().FailDisk(SlotId(b)));
      RunReadsExpecting(array.get(), 60, IoStatus::kOk);
      Drain(array.get());
      EXPECT_GT(array->ec().stats().degraded_reads, 0u);
      array->backend().AuditQuiescent();
      EXPECT_EQ(auditor.violations(), 0u);
    }
  }
}

TEST(EcControllerTest, BeyondMConcurrentFailuresSurfaceUnrecoverable) {
  // m+1 = 3 of 6 columns gone: fewer than k survivors, so any read needing
  // a failed column must surface kUnrecoverable — terminally, without
  // wedging the engine. Reads whose data units sit entirely on live columns
  // still succeed as direct reads.
  InvariantAuditor auditor;
  EcRig rig;
  rig.auditor = &auditor;
  auto array = MakeEc(rig);
  for (uint32_t d = 0; d < 3; ++d) {
    ASSERT_TRUE(array->backend().FailDisk(SlotId(d)));
  }
  constexpr int kOps = 60;
  int done = 0;
  int unrecoverable = 0;
  const uint64_t dataset = array->backend().dataset_sectors();
  for (int i = 0; i < kOps; ++i) {
    const uint64_t lba = (static_cast<uint64_t>(i) * 37) % (dataset - 8);
    IoStatus expected = IoStatus::kOk;
    for (const EcFragment& f : array->ec_layout().Map(lba, 8)) {
      if (f.data_disk < 3) {
        expected = IoStatus::kUnrecoverable;
      }
    }
    unrecoverable += expected == IoStatus::kUnrecoverable ? 1 : 0;
    array->backend().Submit(DiskOp::kRead, lba, 8,
                            [&done, expected, i](const IoResult& r) {
                              ++done;
                              EXPECT_EQ(r.status, expected) << "read " << i;
                            });
  }
  ASSERT_GT(unrecoverable, 0) << "stride never crossed a failed column";
  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(array->sim().Step()) << "simulator ran dry";
    ASSERT_LT(++steps, kStepBudget) << "reads wedged";
  }
  Drain(array.get());
  EXPECT_GT(array->backend().fault_stats().unrecoverable_completions, 0u);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST(EcControllerTest, TwoFailedSlotsRebuildThroughQueuedSparePromotions) {
  // Two fail-stops, two pooled spares: the first promotion starts the
  // rebuild, the second queues behind it, and both slots come back.
  InvariantAuditor auditor;
  EcRig rig;
  rig.auditor = &auditor;
  rig.faults = true;
  rig.hot_spares = 2;
  auto array = MakeEc(rig);
  EXPECT_EQ(array->backend().spares_available(), 2u);
  array->fault_injector()->FailStop(0);
  array->fault_injector()->FailStop(1);

  // Writes across the whole dataset touch both dead drives, so the engine
  // detects each fail-stop and promotes a spare into each slot.
  int done = 0;
  constexpr int kOps = 150;
  const uint64_t dataset = array->backend().dataset_sectors();
  Rng rng(17);
  for (int i = 0; i < kOps; ++i) {
    const uint64_t lba = rng.UniformU64(dataset - 8);
    array->backend().Submit(DiskOp::kWrite, lba, 8,
                            [&done, i](const IoResult& r) {
                              ++done;
                              EXPECT_EQ(r.status, IoStatus::kOk)
                                  << "write " << i;
                            });
  }
  uint64_t steps = 0;
  while (done < kOps) {
    ASSERT_TRUE(array->sim().Step());
    ASSERT_LT(++steps, kStepBudget) << "writes wedged";
  }
  Drain(array.get());

  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_EQ(fs.spares_promoted, 2u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 2u);
  EXPECT_EQ(array->backend().spares_available(), 0u);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)));
  EXPECT_FALSE(array->backend().IsFailed(SlotId(1)));
  EXPECT_GT(array->ec().stats().rebuilt_rows, 0u);

  // Fully restored: healthy reads, no decode path.
  const uint64_t degraded_before = array->ec().stats().degraded_reads;
  RunReadsExpecting(array.get(), 60, IoStatus::kOk);
  Drain(array.get());
  EXPECT_EQ(array->ec().stats().degraded_reads, degraded_before);
  array->backend().AuditQuiescent();
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST(EcControllerTest, WritePlanPicksCheaperOfRmwAndReconstruct) {
  // Unit-aligned single-fragment writes so each op is one planned fragment.
  auto run_writes = [](MimdRaid* array, int ops) {
    int done = 0;
    const uint64_t dataset = array->backend().dataset_sectors();
    for (int i = 0; i < ops; ++i) {
      const uint64_t lba = (static_cast<uint64_t>(i) * 16) % (dataset - 16);
      array->backend().Submit(DiskOp::kWrite, lba - lba % 16, 8,
                              [&done](const IoResult& r) {
                                ++done;
                                EXPECT_EQ(r.status, IoStatus::kOk);
                              });
    }
    uint64_t steps = 0;
    while (done < ops) {
      ASSERT_TRUE(array->sim().Step());
      ASSERT_LT(++steps, kStepBudget);
    }
  };

  // 2+2: reconstruct-write reads the one other data column (k-1 = 1 read);
  // RMW would read old data + two old parities (3 reads). Argmin: RCW.
  {
    EcRig rig;
    rig.disks = 4;
    rig.parity_shards = 2;
    auto array = MakeEc(rig);
    run_writes(array.get(), 40);
    Drain(array.get());
    EXPECT_EQ(array->ec().stats().rmw_writes, 0u);
    EXPECT_EQ(array->ec().stats().reconstruct_writes, 40u);
  }
  // 5+1: RMW reads old data + one old parity (2 reads); reconstruct would
  // read the four other data columns. Argmin: RMW.
  {
    EcRig rig;
    rig.disks = 6;
    rig.parity_shards = 1;
    auto array = MakeEc(rig);
    run_writes(array.get(), 40);
    Drain(array.get());
    EXPECT_EQ(array->ec().stats().reconstruct_writes, 0u);
    EXPECT_EQ(array->ec().stats().rmw_writes, 40u);
  }
}

TEST(EcControllerTest, ExportStatsPublishesStrategyCounters) {
  EcRig rig;
  auto array = MakeEc(rig);
  RunReadsExpecting(array.get(), 40, IoStatus::kOk);
  Drain(array.get());
  StatsRegistry registry;
  array->backend().ExportStats(&registry);
  EXPECT_GT(registry.Get("ec.reads_completed"), 0.0);
  EXPECT_TRUE(registry.Contains("ec.rmw_writes"));
  EXPECT_TRUE(registry.Contains("ec.reconstruct_writes"));
  EXPECT_TRUE(registry.Contains("ec.degraded_reads"));
  EXPECT_TRUE(registry.Contains("ec.rebuilt_rows"));
  EXPECT_TRUE(registry.Contains("fault.retries_issued"));
}

}  // namespace
}  // namespace mimdraid
