// End-to-end fault-injection tests: the injector's determinism, the disk's
// media-error / write-reallocation path (DiskLayout::AddBadSector), and the
// controllers' recovery machinery — retry with backoff, mirror failover,
// RAID-5 degraded reconstruction with repair, error-threshold auto-failure,
// hot-spare promotion, and background scrubbing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/raid5/raid5_controller.h"
#include "src/raid5/raid5_layout.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector in isolation.
// ---------------------------------------------------------------------------

TEST(FaultInjector, DeterministicForSeed) {
  FaultInjectorOptions opts;
  opts.seed = 77;
  opts.latent_error_prob = 0.01;
  opts.transient_error_prob = 0.02;
  opts.timeout_prob = 0.01;
  FaultInjector a(opts);
  FaultInjector b(opts);
  Rng access_rng(5);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t disk = static_cast<uint32_t>(access_rng.UniformU64(3));
    const bool is_write = access_rng.Bernoulli(0.4);
    const uint64_t lba = access_rng.UniformU64(10'000);
    const FaultOutcome oa = a.OnAccess(disk, is_write, lba, 8);
    const FaultOutcome ob = b.OnAccess(disk, is_write, lba, 8);
    ASSERT_EQ(oa.status, ob.status) << "diverged at access " << i;
    ASSERT_EQ(oa.service_multiplier, ob.service_multiplier);
  }
  EXPECT_EQ(a.counters().transient_errors, b.counters().transient_errors);
  EXPECT_EQ(a.counters().timeouts, b.counters().timeouts);
  EXPECT_EQ(a.counters().latent_errors_planted,
            b.counters().latent_errors_planted);
}

TEST(FaultInjector, DistinctSeedsDiverge) {
  FaultInjectorOptions opts;
  opts.transient_error_prob = 0.05;
  opts.timeout_prob = 0.05;
  opts.seed = 1;
  FaultInjector a(opts);
  opts.seed = 2;
  FaultInjector b(opts);
  bool diverged = false;
  for (int i = 0; i < 5000 && !diverged; ++i) {
    diverged = a.OnAccess(0, false, 0, 1).status !=
               b.OnAccess(0, false, 0, 1).status;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, PerSlotStreamsIndependentOfFirstAccessOrder) {
  FaultInjectorOptions opts;
  opts.seed = 9;
  opts.transient_error_prob = 0.1;
  FaultInjector a(opts);
  FaultInjector b(opts);
  // Touch slots in opposite orders; the per-slot sequences must match anyway.
  (void)a.OnAccess(0, false, 0, 1);
  (void)a.OnAccess(1, false, 0, 1);
  (void)b.OnAccess(1, false, 0, 1);
  (void)b.OnAccess(0, false, 0, 1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a.OnAccess(0, false, 0, 1).status,
              b.OnAccess(0, false, 0, 1).status);
    ASSERT_EQ(a.OnAccess(1, false, 0, 1).status,
              b.OnAccess(1, false, 0, 1).status);
  }
}

TEST(FaultInjector, ReplaceDiskClearsSlotFaultState) {
  FaultInjector injector(FaultInjectorOptions{});
  injector.FailStop(2);
  injector.InjectLatentError(2, 100);
  injector.InjectTransientErrors(2, 5);
  injector.SetFailSlow(2, 4.0);
  EXPECT_TRUE(injector.IsFailStopped(2));
  EXPECT_EQ(injector.LatentErrorCount(2), 1u);
  injector.ReplaceDisk(2);
  EXPECT_FALSE(injector.IsFailStopped(2));
  EXPECT_EQ(injector.LatentErrorCount(2), 0u);
  EXPECT_EQ(injector.OnAccess(2, false, 100, 1).status, IoStatus::kOk);
  EXPECT_EQ(injector.OnAccess(2, false, 0, 1).service_multiplier, 1.0);
}

TEST(FaultInjector, ReplaceDiskPreservesSlotStreamPosition) {
  // The contract fault_injector.h documents: replacing the drive in a slot
  // resets fault state but MUST NOT advance, rewind, or reseed the slot's
  // RNG — post-replacement draws match a run with no replacement at all.
  FaultInjectorOptions opts;
  opts.seed = 31;
  opts.transient_error_prob = 0.08;
  opts.lifetime.hazard = LifetimeHazard::kWeibull;
  opts.lifetime.weibull_shape = 1.5;
  opts.lifetime.weibull_scale_hours = 40'000.0;
  opts.lifetime.lse_rate_per_hour = 1.0e-4;
  FaultInjector replaced(opts);
  FaultInjector control(opts);
  // Burn an identical prefix on both: access verdicts and lifetime draws all
  // consume the slot stream.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(replaced.OnAccess(3, false, i, 4).status,
              control.OnAccess(3, false, i, 4).status);
  }
  ASSERT_DOUBLE_EQ(replaced.DrawLifetimeHours(3), control.DrawLifetimeHours(3));
  // Dirty the slot, then promote a replacement into it on one injector only.
  replaced.InjectLatentError(3, 7);
  replaced.InjectTransientErrors(3, 2);
  replaced.FailStop(3);
  replaced.ReplaceDisk(3);
  // Every subsequent draw — lifetime, LSE gap, access verdict — must be the
  // value the slot would have produced had the promotion never happened.
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(replaced.DrawLifetimeHours(3), control.DrawLifetimeHours(3))
        << "lifetime draw " << i << " diverged after ReplaceDisk";
    ASSERT_DOUBLE_EQ(replaced.DrawLseGapHours(3), control.DrawLseGapHours(3))
        << "LSE gap draw " << i << " diverged after ReplaceDisk";
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(replaced.OnAccess(3, false, 1000 + i, 4).status,
              control.OnAccess(3, false, 1000 + i, 4).status)
        << "access verdict " << i << " diverged after ReplaceDisk";
  }
  // Untouched slots are unaffected either way.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(replaced.OnAccess(1, false, i, 1).status,
              control.OnAccess(1, false, i, 1).status);
  }
}

// ---------------------------------------------------------------------------
// SimDisk media path: latent errors fail reads until a write reallocates the
// sector to spare space (DiskLayout::AddBadSector) and repairs the media.
// ---------------------------------------------------------------------------

struct DiskRig {
  DiskRig() : disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
                   DiskNoiseModel::None(), 11, 0.0) {
    disk.SetFaultInjector(&injector, SlotId(0));
  }

  DiskOpResult Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    DiskOpResult out;
    bool done = false;
    disk.Start(op, BlockAddr(lba), sectors, [&](const DiskOpResult& r) {
      out = r;
      done = true;
    });
    while (!done) {
      EXPECT_TRUE(sim.Step());
    }
    return out;
  }

  Simulator sim;
  FaultInjector injector{FaultInjectorOptions{}};
  SimDisk disk;
};

TEST(SimDiskFaults, LatentErrorPersistsUntilWriteReallocates) {
  DiskRig rig;
  rig.injector.InjectLatentError(0, 5);
  EXPECT_EQ(rig.Do(DiskOp::kRead, 0, 8).status, IoStatus::kMediaError);
  EXPECT_EQ(rig.Do(DiskOp::kRead, 0, 8).status, IoStatus::kMediaError);
  EXPECT_EQ(rig.injector.counters().media_error_reads, 2u);
  EXPECT_EQ(rig.disk.layout().num_remapped_sectors(), 0u);

  // The rewrite triggers firmware reallocation: the LBA moves to spare space
  // and the latent error is cleared.
  EXPECT_EQ(rig.Do(DiskOp::kWrite, 0, 8).status, IoStatus::kOk);
  EXPECT_EQ(rig.disk.layout().num_remapped_sectors(), 1u);
  EXPECT_TRUE(rig.disk.layout().IsRemapped(5));
  EXPECT_FALSE(rig.injector.HasLatentError(0, 5));
  EXPECT_EQ(rig.injector.counters().write_repairs, 1u);
  EXPECT_EQ(rig.Do(DiskOp::kRead, 0, 8).status, IoStatus::kOk);
}

TEST(SimDiskFaults, RemappedSectorStaysAddressableAcrossLayout) {
  DiskRig rig;
  // Remap several sectors scattered through the address space, then verify
  // every LBA still resolves to a unique physical slot and reads fine.
  for (uint64_t lba : {0ull, 7ull, 63ull, 64ull, 200ull}) {
    rig.injector.InjectLatentError(0, lba);
  }
  EXPECT_EQ(rig.Do(DiskOp::kWrite, 0, 256).status, IoStatus::kOk);
  EXPECT_EQ(rig.disk.layout().num_remapped_sectors(), 5u);
  EXPECT_EQ(rig.injector.LatentErrorCount(0), 0u);
  EXPECT_EQ(rig.Do(DiskOp::kRead, 0, 256).status, IoStatus::kOk);
}

TEST(SimDiskFaults, FailStopRejectsWithoutMechanicalWork) {
  DiskRig rig;
  rig.injector.FailStop(0);
  const DiskOpResult r = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kDiskFailed);
  EXPECT_EQ(r.seek_us, 0.0);
  EXPECT_EQ(rig.injector.counters().failstop_rejections, 1u);
}

TEST(SimDiskFaults, TimeoutCompletesAtWatchdogDeadline) {
  FaultInjectorOptions opts;
  opts.timeout_prob = 1.0;
  opts.watchdog_timeout_us = SimDuration(123'000);
  Simulator sim;
  FaultInjector injector(opts);
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), 3, 0.0);
  disk.SetFaultInjector(&injector, SlotId(0));
  DiskOpResult out;
  bool done = false;
  disk.Start(DiskOp::kRead, BlockAddr(0), 8, [&](const DiskOpResult& r) {
    out = r;
    done = true;
  });
  while (!done) {
    ASSERT_TRUE(sim.Step());
  }
  EXPECT_EQ(out.status, IoStatus::kTimeout);
  EXPECT_EQ(out.ServiceUs(), SimDuration(123'000));
}

// ---------------------------------------------------------------------------
// Mirrored-array recovery (ArrayController).
// ---------------------------------------------------------------------------

struct ArrayRig {
  ArrayRig(int ds, int dr, int dm, const FaultInjectorOptions& fopts,
           uint32_t fail_threshold = 0,
           SimDuration scrub_interval_us = SimDuration(0),
           uint32_t spares = 0, uint64_t dataset = 3000)
      : injector(fopts) {
    aspect.ds = ds;
    aspect.dr = dr;
    aspect.dm = dm;
    const int d = aspect.TotalDisks();
    for (int i = 0; i < d + static_cast<int>(spares); ++i) {
      disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 61 + i, i * 777.0));
      preds.push_back(std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
      if (i < d) {
        dptr.push_back(disks.back().get());
        pptr.push_back(preds.back().get());
      }
    }
    layout = std::make_unique<ArrayLayout>(&disks[0]->layout(), aspect, 16,
                                           dataset);
    ArrayControllerOptions copts;
    copts.fault_injector = &injector;
    copts.disk_error_fail_threshold = fail_threshold;
    copts.scrub_interval_us = scrub_interval_us;
    controller = std::make_unique<ArrayController>(&sim, dptr, pptr,
                                                   layout.get(), copts);
    for (uint32_t s = 0; s < spares; ++s) {
      controller->AddSpare(disks[d + s].get(), preds[d + s].get());
    }
  }

  IoResult Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    IoResult out;
    bool done = false;
    controller->Submit(op, lba, sectors, [&](const IoResult& r) {
      out = r;
      done = true;
    });
    while (!done) {
      EXPECT_TRUE(sim.Step());
    }
    return out;
  }

  void Drain() {
    controller->StopScrub();
    while ((!controller->Idle() || controller->RebuildInProgress()) &&
           sim.Step()) {
    }
  }

  // Plants a latent error at every physical sector disk `target` holds for
  // the logical range [0, span). Returns the number of LBAs planted.
  size_t PlantLatentEverywhere(uint32_t target, uint64_t span) {
    size_t planted = 0;
    for (uint64_t lba = 0; lba < span; lba += 16) {
      const uint32_t sectors =
          static_cast<uint32_t>(std::min<uint64_t>(16, span - lba));
      for (const ArrayFragment& f : layout->Map(lba, sectors)) {
        for (const ReplicaLocation& loc : f.replicas) {
          if (loc.disk != target) {
            continue;
          }
          for (uint32_t s = 0; s < f.sectors; ++s) {
            injector.InjectLatentError(target, loc.lba + s);
            ++planted;
          }
        }
      }
    }
    return planted;
  }

  Simulator sim;
  ArrayAspect aspect;
  FaultInjector injector;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  std::unique_ptr<ArrayLayout> layout;
  std::unique_ptr<ArrayController> controller;
};

TEST(ArrayRecovery, TransientWriteErrorsRetryUntilTheyLand) {
  ArrayRig rig(1, 1, 1, FaultInjectorOptions{});
  rig.injector.InjectTransientErrors(0, 2);
  const IoResult r = rig.Do(DiskOp::kWrite, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.recovery_attempts, 2u);
  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_EQ(fs.media_errors_seen, 2u);
  EXPECT_EQ(fs.retries_issued, 2u);
  EXPECT_EQ(fs.unrecoverable_completions, 0u);
  rig.Drain();
}

TEST(ArrayRecovery, ReadTimeoutsRetryThenSurfaceUnrecoverable) {
  FaultInjectorOptions fopts;
  fopts.timeout_prob = 1.0;  // the drive hangs on every command
  ArrayRig rig(1, 1, 1, fopts);
  const IoResult r = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kUnrecoverable);
  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  // RetryPolicy{max_attempts = 3}: initial try + 2 in-place retries, then the
  // single-copy failover finds no live replica and surfaces the loss.
  EXPECT_EQ(fs.timeouts_seen, 3u);
  EXPECT_EQ(fs.retries_issued, 2u);
  EXPECT_EQ(fs.failovers, 1u);
  EXPECT_EQ(fs.unrecoverable_completions, 1u);
  rig.Drain();
}

TEST(ArrayRecovery, MediaErrorFailsOverToMirrorAndRepairs) {
  ArrayRig rig(1, 1, 2, FaultInjectorOptions{});
  const size_t planted = rig.PlantLatentEverywhere(0, 3000);
  ASSERT_GT(planted, 0u);

  Rng rng(13);
  for (int i = 0; i < 80; ++i) {
    const IoResult r = rig.Do(DiskOp::kRead, rng.UniformU64(3000 - 8), 8);
    EXPECT_EQ(r.status, IoStatus::kOk);  // the mirror always has a clean copy
  }
  rig.Drain();

  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_GT(fs.media_errors_seen, 0u);
  EXPECT_GT(fs.failovers, 0u);
  EXPECT_GT(fs.repairs_queued, 0u);
  // Repair rewrites reached the drive: latent errors cleared and the bad
  // sectors remapped to spare space.
  EXPECT_GT(rig.injector.counters().write_repairs, 0u);
  EXPECT_LT(rig.injector.LatentErrorCount(0), planted);
  EXPECT_GT(rig.disks[0]->layout().num_remapped_sectors(), 0u);
  EXPECT_FALSE(
      rig.controller->IsFailed(SlotId(0)));  // threshold 0: never auto-fail
}

TEST(ArrayRecovery, ConcurrentReadsSurviveInFlightRemap) {
  // Regression for the write-reallocation path: a burst of overlapping reads
  // is outstanding while repair writes remap the sectors under them. Nothing
  // may crash, every read completes, and the bad sectors end up remapped.
  ArrayRig rig(1, 1, 2, FaultInjectorOptions{});
  const size_t planted = rig.PlantLatentEverywhere(0, 64);
  ASSERT_GT(planted, 0u);

  int done = 0;
  constexpr int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    rig.controller->Submit(DiskOp::kRead, (i * 8) % 56, 8,
                           [&](const IoResult& r) {
                             EXPECT_EQ(r.status, IoStatus::kOk);
                             ++done;
                           });
  }
  while (done < kOps) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_EQ(done, kOps);
  EXPECT_TRUE(rig.controller->Idle());
  if (rig.controller->fault_stats().media_errors_seen > 0) {
    EXPECT_GT(rig.disks[0]->layout().num_remapped_sectors(), 0u);
    EXPECT_GT(rig.injector.counters().write_repairs, 0u);
  }
}

TEST(ArrayRecovery, ErrorThresholdAutoFailsAndPromotesHotSpare) {
  ArrayRig rig(1, 1, 2, FaultInjectorOptions{}, /*fail_threshold=*/3,
               /*scrub_interval_us=*/SimDuration(0), /*spares=*/1,
               /*dataset=*/800);
  rig.PlantLatentEverywhere(0, 800);

  Rng rng(17);
  for (int i = 0; i < 120; ++i) {
    const IoResult r = rig.Do(DiskOp::kRead, rng.UniformU64(800 - 8), 8);
    EXPECT_EQ(r.status, IoStatus::kOk);
  }
  rig.Drain();

  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_EQ(fs.auto_disk_failures, 1u);
  EXPECT_EQ(fs.spares_promoted, 1u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 1u);
  EXPECT_EQ(rig.controller->spares_available(), 0u);
  // The promoted spare was rebuilt and put back in service.
  EXPECT_FALSE(rig.controller->IsFailed(SlotId(0)));
  EXPECT_TRUE(rig.injector.IsFailStopped(0) == false);
  // Post-rebuild reads still all succeed.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rig.Do(DiskOp::kRead, rng.UniformU64(800 - 8), 8).status,
              IoStatus::kOk);
  }
  rig.Drain();
}

TEST(ArrayRecovery, FailStopDiskIsDetectedAndReplaced) {
  ArrayRig rig(2, 1, 2, FaultInjectorOptions{}, /*fail_threshold=*/0,
               /*scrub_interval_us=*/SimDuration(0), /*spares=*/1,
               /*dataset=*/1600);
  rig.injector.FailStop(1);

  Rng rng(19);
  for (int i = 0; i < 60; ++i) {
    const IoResult r = rig.Do(DiskOp::kRead, rng.UniformU64(1600 - 8), 8);
    EXPECT_EQ(r.status, IoStatus::kOk);
  }
  rig.Drain();

  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_GT(fs.disk_failed_seen, 0u);
  EXPECT_EQ(fs.auto_disk_failures, 1u);
  EXPECT_EQ(fs.spares_promoted, 1u);
  EXPECT_EQ(fs.spare_rebuilds_completed, 1u);
  EXPECT_FALSE(rig.controller->IsFailed(SlotId(1)));
}

TEST(ArrayRecovery, ScrubberFindsAndRepairsLatentErrors) {
  ArrayRig rig(1, 1, 2, FaultInjectorOptions{}, /*fail_threshold=*/0,
               /*scrub_interval_us=*/SimDuration(20'000), /*spares=*/0,
               /*dataset=*/640);
  for (uint64_t lba : {3ull, 100ull, 401ull}) {
    for (const ArrayFragment& f : rig.layout->Map(lba, 1)) {
      rig.injector.InjectLatentError(f.replicas[0].disk, f.replicas[0].lba);
    }
  }
  ASSERT_EQ(rig.injector.TotalLatentErrors(), 3u);

  // No foreground traffic: the idle-gated scrubber owns the array. Give it
  // time for at least one full sweep plus the repair rewrites.
  rig.sim.RunUntil(SimTime(5'000'000));
  rig.Drain();

  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_GT(fs.scrub_reads, 0u);
  EXPECT_GE(fs.scrub_repairs, 3u);
  EXPECT_GE(fs.scrub_sweeps_completed, 1u);
  EXPECT_EQ(rig.injector.TotalLatentErrors(), 0u);
  EXPECT_EQ(rig.injector.counters().write_repairs, 3u);
  rig.controller->AuditQuiescent();
}

TEST(ArrayRecovery, ScrubberYieldsToForegroundTraffic) {
  ArrayRig rig(1, 1, 2, FaultInjectorOptions{}, /*fail_threshold=*/0,
               /*scrub_interval_us=*/SimDuration(10'000), /*spares=*/0,
               /*dataset=*/640);
  // Keep the array busy: back-to-back foreground reads for 2 simulated
  // seconds. The idle-gated scrubber must stand aside the whole time.
  Rng rng(23);
  while (rig.sim.Now() < SimTime(2'000'000)) {
    rig.Do(DiskOp::kRead, rng.UniformU64(640 - 8), 8);
  }
  EXPECT_EQ(rig.controller->fault_stats().scrub_reads, 0u);
  rig.Drain();
}

// ---------------------------------------------------------------------------
// RAID-5 recovery (Raid5Controller).
// ---------------------------------------------------------------------------

struct Raid5Rig {
  explicit Raid5Rig(uint32_t disks_n = 4,
                    const FaultInjectorOptions& fopts = FaultInjectorOptions{})
      : injector(fopts) {
    for (uint32_t i = 0; i < disks_n; ++i) {
      sim_disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 17 + i, i * 500.0));
      preds.push_back(
          std::make_unique<OraclePredictor>(sim_disks.back().get(), 0.0));
      dptr.push_back(sim_disks.back().get());
      pptr.push_back(preds.back().get());
    }
    layout = std::make_unique<Raid5Layout>(disks_n, 16, 2000);
    Raid5ControllerOptions copts;
    copts.fault_injector = &injector;
    controller = std::make_unique<Raid5Controller>(&sim, dptr, pptr,
                                                   layout.get(), copts);
  }

  IoResult Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    IoResult out;
    bool done = false;
    controller->Submit(op, lba, sectors, [&](const IoResult& r) {
      out = r;
      done = true;
    });
    while (!done) {
      EXPECT_TRUE(sim.Step());
    }
    return out;
  }

  void Drain() {
    while (!controller->Idle() && sim.Step()) {
    }
  }

  Simulator sim;
  FaultInjector injector;
  std::vector<std::unique_ptr<SimDisk>> sim_disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  std::unique_ptr<Raid5Layout> layout;
  std::unique_ptr<Raid5Controller> controller;
};

TEST(Raid5Recovery, TransientReadErrorRetriesInPlace) {
  Raid5Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  rig.injector.InjectTransientErrors(frag.data_disk, 1);
  const IoResult r = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kOk);
  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_EQ(fs.media_errors_seen, 1u);
  EXPECT_EQ(fs.retries_issued, 1u);
  EXPECT_EQ(rig.controller->stats().degraded_reads, 0u);
  rig.Drain();
}

TEST(Raid5Recovery, PersistentMediaErrorReconstructsAndRepairs) {
  Raid5Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  for (uint32_t s = 0; s < frag.sectors; ++s) {
    rig.injector.InjectLatentError(frag.data_disk, frag.disk_lba + s);
  }
  const IoResult r = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kOk);  // served via peer reconstruction
  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_GT(fs.media_errors_seen, 0u);
  EXPECT_GT(fs.failovers, 0u);
  EXPECT_EQ(fs.repairs_queued, 1u);
  rig.Drain();
  // The repair rewrite reallocated the bad sectors on the data disk.
  EXPECT_EQ(rig.injector.LatentErrorCount(frag.data_disk), 0u);
  EXPECT_GT(rig.injector.counters().write_repairs, 0u);
  EXPECT_GT(rig.sim_disks[frag.data_disk]->layout().num_remapped_sectors(), 0u);
  // The repaired copy serves direct reads again.
  const uint64_t before = rig.controller->stats().degraded_reads;
  EXPECT_EQ(rig.Do(DiskOp::kRead, 0, 8).status, IoStatus::kOk);
  EXPECT_EQ(rig.controller->stats().degraded_reads, before);
}

TEST(Raid5Recovery, DoubleFailureReadsSurfaceUnrecoverable) {
  // Satellite regression: the second FailDisk used to be a hard CHECK; both
  // orders must now be survived, with per-fragment graceful degradation.
  for (const bool reverse : {false, true}) {
    Raid5Rig rig;
    const auto frag = rig.layout->Map(0, 8)[0];
    const uint32_t first = reverse ? frag.parity_disk : frag.data_disk;
    const uint32_t second = reverse ? frag.data_disk : frag.parity_disk;
    rig.controller->FailDisk(SlotId(first));
    rig.controller->FailDisk(SlotId(second));
    EXPECT_TRUE(rig.controller->IsFailed(SlotId(frag.data_disk)));
    EXPECT_TRUE(rig.controller->IsFailed(SlotId(frag.parity_disk)));

    // This fragment needs its dead data disk plus a full reconstruction set
    // that includes the other dead disk: unrecoverable, not a crash.
    const IoResult lost = rig.Do(DiskOp::kRead, 0, 8);
    EXPECT_EQ(lost.status, IoStatus::kUnrecoverable);

    // A fragment whose data disk survived both failures still reads fine.
    uint64_t healthy_lba = 0;
    bool found = false;
    for (uint64_t lba = 0; lba < rig.layout->data_capacity_sectors() && !found;
         lba += 16) {
      const auto f = rig.layout->Map(lba, 8)[0];
      if (!rig.controller->IsFailed(SlotId(f.data_disk))) {
        healthy_lba = lba;
        found = true;
      }
    }
    ASSERT_TRUE(found);
    EXPECT_EQ(rig.Do(DiskOp::kRead, healthy_lba, 8).status, IoStatus::kOk);
    rig.Drain();
    EXPECT_GT(rig.controller->fault_stats().unrecoverable_completions, 0u);
  }
}

TEST(Raid5Recovery, DoubleFailureMixedTrafficNeverCrashes) {
  for (const uint64_t seed : {29ull, 31ull}) {
    Raid5Rig rig(5);
    rig.controller->FailDisk(SlotId(1));
    rig.controller->FailDisk(SlotId(3));
    Rng rng(seed);
    int done = 0;
    constexpr int kOps = 150;
    for (int i = 0; i < kOps; ++i) {
      const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
      const uint64_t lba =
          rng.UniformU64(rig.layout->data_capacity_sectors() - sectors);
      rig.controller->Submit(
          rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite, lba, sectors,
          [&](const IoResult& r) {
            EXPECT_TRUE(r.status == IoStatus::kOk ||
                        r.status == IoStatus::kUnrecoverable);
            ++done;
          });
    }
    while (done < kOps) {
      ASSERT_TRUE(rig.sim.Step());
    }
    rig.Drain();
    EXPECT_TRUE(rig.controller->Idle());
  }
}

TEST(Raid5Recovery, FailStopVerdictAutoFailsTheSlot) {
  Raid5Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  rig.injector.FailStop(frag.data_disk);
  const IoResult r = rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(r.status, IoStatus::kOk);  // degraded reconstruction
  const FaultRecoveryStats& fs = rig.controller->fault_stats();
  EXPECT_GT(fs.disk_failed_seen, 0u);
  EXPECT_EQ(fs.auto_disk_failures, 1u);
  EXPECT_TRUE(rig.controller->IsFailed(SlotId(frag.data_disk)));
  EXPECT_EQ(rig.controller->stats().degraded_reads, 1u);
  rig.Drain();
}

TEST(Raid5Recovery, RebuildSurvivesSecondFailureMidway) {
  // Fail disk 0, start its rebuild, then kill another disk mid-rebuild: the
  // rebuild must terminate (some rows lost, counted), never wedge.
  Raid5Rig rig;
  rig.controller->FailDisk(SlotId(0));
  IoResult rebuild_result;
  bool rebuilt = false;
  rig.controller->Rebuild(SlotId(0), [&](const IoResult& r) {
    rebuild_result = r;
    rebuilt = true;
  });
  // Let a few rows rebuild, then fail a survivor.
  rig.sim.RunUntil(rig.sim.Now() + SimDuration(40'000));
  rig.controller->FailDisk(SlotId(2));
  while (!rebuilt) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_NE(rebuild_result.status, IoStatus::kOk);
  EXPECT_GT(rig.controller->fault_stats().rebuild_fragments_lost, 0u);
  EXPECT_TRUE(rig.controller->Idle());
}

}  // namespace
}  // namespace mimdraid
