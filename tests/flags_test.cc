#include <gtest/gtest.h>

#include <vector>

#include "src/util/flags.h"

namespace mimdraid {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsForm) {
  const Flags f = Make({"--disks=6", "--rate=2.5", "--name=foo"});
  EXPECT_EQ(f.GetInt("disks", 0), 6);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0), 2.5);
  EXPECT_EQ(f.GetString("name", ""), "foo");
}

TEST(Flags, SpaceForm) {
  const Flags f = Make({"--disks", "12", "--name", "bar"});
  EXPECT_EQ(f.GetInt("disks", 0), 12);
  EXPECT_EQ(f.GetString("name", ""), "bar");
}

TEST(Flags, BareBoolean) {
  const Flags f = Make({"--auto", "--verbose"});
  EXPECT_TRUE(f.GetBool("auto", false));
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("missing", false));
  EXPECT_TRUE(f.GetBool("missing", true));
}

TEST(Flags, ExplicitFalse) {
  const Flags f = Make({"--auto=false", "--quiet=0"});
  EXPECT_FALSE(f.GetBool("auto", true));
  EXPECT_FALSE(f.GetBool("quiet", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = Make({});
  EXPECT_EQ(f.GetInt("disks", 42), 42);
  EXPECT_EQ(f.GetString("x", "d"), "d");
  EXPECT_FALSE(f.Has("disks"));
}

TEST(Flags, PositionalArguments) {
  const Flags f = Make({"input.trace", "--disks=3", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.trace");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(Flags, NamesLists) {
  const Flags f = Make({"--a=1", "--b=2"});
  EXPECT_EQ(f.Names().size(), 2u);
}

}  // namespace
}  // namespace mimdraid
