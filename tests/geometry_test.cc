#include <gtest/gtest.h>

#include "src/disk/geometry.h"

namespace mimdraid {
namespace {

TEST(Geometry, St39133IsValid) {
  const DiskGeometry g = MakeSt39133Geometry();
  EXPECT_TRUE(g.Valid());
  EXPECT_EQ(g.rpm, 10000u);
  EXPECT_EQ(g.RotationUs().us(), 6000);
  EXPECT_EQ(g.num_heads, 12u);
  EXPECT_EQ(g.zones.size(), 10u);
}

TEST(Geometry, St39133CapacityNear9GB) {
  const DiskGeometry g = MakeSt39133Geometry();
  const double gb = static_cast<double>(g.CapacityBytes()) / 1e9;
  EXPECT_GT(gb, 8.5);
  EXPECT_LT(gb, 9.8);
}

TEST(Geometry, ZoneIndexLookup) {
  const DiskGeometry g = MakeSt39133Geometry();
  EXPECT_EQ(g.ZoneIndexOf(0), 0u);
  EXPECT_EQ(g.ZoneIndexOf(g.zones[1].first_cylinder - 1), 0u);
  EXPECT_EQ(g.ZoneIndexOf(g.zones[1].first_cylinder), 1u);
  EXPECT_EQ(g.ZoneIndexOf(g.num_cylinders - 1), 9u);
}

TEST(Geometry, SptDecreasesInward) {
  const DiskGeometry g = MakeSt39133Geometry();
  for (size_t i = 1; i < g.zones.size(); ++i) {
    EXPECT_LT(g.zones[i].sectors_per_track, g.zones[i - 1].sectors_per_track);
  }
}

TEST(Geometry, ZoneCylindersSumToTotal) {
  const DiskGeometry g = MakeSt39133Geometry();
  uint32_t total = 0;
  for (uint32_t z = 0; z < g.zones.size(); ++z) {
    total += g.ZoneCylinders(z);
  }
  EXPECT_EQ(total, g.num_cylinders);
}

TEST(Geometry, TotalSectorsMatchesZoneArithmetic) {
  const DiskGeometry g = MakeTestGeometry();
  // 30 cylinders * 4 heads * 40 spt + 30 * 4 * 30 spt
  EXPECT_EQ(g.TotalSectors(), 30ull * 4 * 40 + 30ull * 4 * 30);
}

TEST(Geometry, SlotTimeMatchesRotationOverSpt) {
  const DiskGeometry g = MakeTestGeometry();
  EXPECT_DOUBLE_EQ(g.SlotTimeUs(0), 6000.0 / 40);
  EXPECT_DOUBLE_EQ(g.SlotTimeUs(59), 6000.0 / 30);
}

TEST(Geometry, SkewCoversHeadSwitch) {
  const DiskGeometry g = MakeSt39133Geometry();
  for (const Zone& z : g.zones) {
    const double slot_us = 6000.0 / z.sectors_per_track;
    // Track skew must cover the ~900 us head switch.
    EXPECT_GE(z.track_skew * slot_us, 900.0);
    // Cylinder skew must cover a single-cylinder seek (larger).
    EXPECT_GE(z.cylinder_skew, z.track_skew);
  }
}

TEST(Geometry, InvalidWhenZonesUnsorted) {
  DiskGeometry g = MakeTestGeometry();
  std::swap(g.zones[0], g.zones[1]);
  g.zones[0].first_cylinder = 30;
  g.zones[1].first_cylinder = 0;
  EXPECT_FALSE(g.Valid());
}

TEST(Geometry, InvalidWhenSkewExceedsSpt) {
  DiskGeometry g = MakeTestGeometry();
  g.zones[0].track_skew = g.zones[0].sectors_per_track;
  EXPECT_FALSE(g.Valid());
}

TEST(Geometry, InvalidWhenFirstZoneNotAtCylinderZero) {
  DiskGeometry g = MakeTestGeometry();
  g.zones[0].first_cylinder = 1;
  EXPECT_FALSE(g.Valid());
}

}  // namespace
}  // namespace mimdraid
