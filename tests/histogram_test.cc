#include <gtest/gtest.h>

#include <limits>

#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

TEST(Histogram, CountsAndOverflow) {
  Histogram h(10.0, 5);  // buckets [0,10) ... [40,50), overflow beyond
  h.Add(0.0);
  h.Add(9.9);
  h.Add(10.0);
  h.Add(49.9);
  h.Add(50.0);
  h.Add(1e9);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[4], 1u);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(10.0, 4);
  h.Add(-5.0);
  EXPECT_EQ(h.counts()[0], 1u);
}

TEST(Histogram, HugeSampleLandsInOverflow) {
  // Samples beyond SIZE_MAX * width used to hit an undefined double -> size_t
  // conversion; they must land in the overflow bucket instead.
  Histogram h(10.0, 4);
  h.Add(1e300);
  h.Add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, TinyQuantileUsesFirstSample) {
  // q small enough that q*total rounds to 0 must still report the bucket of
  // the first sample, not the (empty) first bucket.
  Histogram h(1.0, 10);
  h.Add(5.5);  // single sample in bucket [5,6)
  EXPECT_DOUBLE_EQ(h.QuantileUpperBound(0.001), 6.0);
}

TEST(Histogram, QuantileUpperBound) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.QuantileUpperBound(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.QuantileUpperBound(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.QuantileUpperBound(1.0), 100.0, 1e-9);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h(1.0, 10);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0.0);
}

TEST(Histogram, MatchesExactPercentilesOnUniformData) {
  Histogram h(5.0, 2000);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    h.Add(rng.UniformDouble(0, 10000));
  }
  EXPECT_NEAR(h.QuantileUpperBound(0.5), 5000.0, 100.0);
  EXPECT_NEAR(h.QuantileUpperBound(0.9), 9000.0, 100.0);
}

}  // namespace
}  // namespace mimdraid
