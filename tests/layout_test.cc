#include <gtest/gtest.h>

#include <cmath>

#include "src/disk/layout.h"

namespace mimdraid {
namespace {

class LayoutTest : public ::testing::Test {
 protected:
  LayoutTest() : geo_(MakeTestGeometry()), layout_(&geo_) {}
  DiskGeometry geo_;
  DiskLayout layout_;  // default: 1 reserved track, 1 spare track/zone
};

TEST_F(LayoutTest, DataSectorCount) {
  // Zone 0: 30 cyl * 4 heads = 120 tracks, minus 1 reserved minus 1 spare =
  // 118 tracks * 40 spt. Zone 1: 120 - 1 spare = 119 tracks * 30 spt.
  EXPECT_EQ(layout_.num_data_sectors(), 118ull * 40 + 119ull * 30);
}

TEST_F(LayoutTest, RoundTripAllSectors) {
  for (uint64_t lba = 0; lba < layout_.num_data_sectors(); ++lba) {
    const Chs chs = layout_.ToChs(lba);
    EXPECT_EQ(layout_.ToLba(chs), lba) << "lba=" << lba;
  }
}

TEST_F(LayoutTest, FirstLbaSkipsReservedTrack) {
  const Chs chs = layout_.ToChs(0);
  EXPECT_EQ(chs.cylinder, 0u);
  EXPECT_EQ(chs.head, 1u);  // head 0 of cylinder 0 is reserved
  EXPECT_EQ(chs.sector, 0u);
}

TEST_F(LayoutTest, ReservedAndSpareTracksNotData) {
  EXPECT_FALSE(layout_.IsDataTrack(0, 0));            // reserved
  EXPECT_TRUE(layout_.IsDataTrack(0, 1));
  EXPECT_FALSE(layout_.IsDataTrack(29, 3));           // zone 0 spare (last track)
  EXPECT_TRUE(layout_.IsDataTrack(30, 0));            // zone 1 first
  EXPECT_FALSE(layout_.IsDataTrack(59, 3));           // zone 1 spare
}

TEST_F(LayoutTest, ToLbaInvalidOnNonDataTracks) {
  EXPECT_EQ(layout_.ToLba(Chs{0, 0, 5}), kInvalidLba);
  EXPECT_EQ(layout_.ToLba(Chs{29, 3, 0}), kInvalidLba);
}

TEST_F(LayoutTest, SequentialSectorsAreConsecutiveSlots) {
  // Within a track, slot(lba+1) = slot(lba) + 1 (mod spt).
  const Chs c0 = layout_.ToChs(10);
  const Chs c1 = layout_.ToChs(11);
  ASSERT_EQ(c0.cylinder, c1.cylinder);
  ASSERT_EQ(c0.head, c1.head);
  const uint32_t spt = geo_.SectorsPerTrack(c0.cylinder);
  EXPECT_EQ((layout_.SlotOf(c0) + 1) % spt, layout_.SlotOf(c1));
}

TEST_F(LayoutTest, TrackSkewAppliedBetweenHeads) {
  const uint32_t spt = geo_.zones[0].sectors_per_track;
  const uint32_t skew = geo_.zones[0].track_skew;
  // Cylinder 1 (no reserved tracks): head h starts skewed by h*track_skew
  // plus the accumulated cylinder-chain skew.
  const uint32_t base = layout_.TrackStartSlot(1, 0);
  EXPECT_EQ(layout_.TrackStartSlot(1, 1), (base + skew) % spt);
  EXPECT_EQ(layout_.TrackStartSlot(1, 2), (base + 2 * skew) % spt);
}

TEST_F(LayoutTest, CylinderSkewAppliedBetweenCylinders) {
  const Zone& z = geo_.zones[0];
  const uint32_t spt = z.sectors_per_track;
  const uint32_t chain = (geo_.num_heads - 1) * z.track_skew + z.cylinder_skew;
  EXPECT_EQ(layout_.TrackStartSlot(2, 0),
            (layout_.TrackStartSlot(1, 0) + chain) % spt);
}

TEST_F(LayoutTest, SkewResetsAtZoneBoundary) {
  EXPECT_EQ(layout_.TrackStartSlot(30, 0), 0u);
}

TEST_F(LayoutTest, AngleMatchesSlotFraction) {
  const Chs chs = layout_.ToChs(123);
  const uint32_t spt = geo_.SectorsPerTrack(chs.cylinder);
  EXPECT_DOUBLE_EQ(layout_.AngleOf(chs),
                   static_cast<double>(layout_.SlotOf(chs)) / spt);
}

TEST_F(LayoutTest, LbaForAngleReturnsSectorAtOrAfterAngle) {
  for (double angle : {0.0, 0.1, 0.25, 0.5, 0.77, 0.99}) {
    const uint64_t lba = layout_.LbaForAngle(5, 2, angle);
    ASSERT_NE(lba, kInvalidLba);
    const Chs chs = layout_.ToChs(lba);
    EXPECT_EQ(chs.cylinder, 5u);
    EXPECT_EQ(chs.head, 2u);
    const double got = layout_.AngleOf(chs);
    // At-or-cyclically-after within one slot.
    double delta = got - angle;
    if (delta < 0) {
      delta += 1.0;
    }
    EXPECT_LT(delta, 1.0 / geo_.SectorsPerTrack(5) + 1e-9);
  }
}

TEST_F(LayoutTest, LbaForAngleRoundTripsOwnAngle) {
  // The angle of an existing sector maps back to that sector.
  const uint64_t lba = 777;
  const Chs chs = layout_.ToChs(lba);
  EXPECT_EQ(layout_.LbaForAngle(chs.cylinder, chs.head, layout_.AngleOf(chs)),
            lba);
}

TEST_F(LayoutTest, LbaForAngleInvalidOnReservedTrack) {
  EXPECT_EQ(layout_.LbaForAngle(0, 0, 0.5), kInvalidLba);
}

TEST_F(LayoutTest, BadSectorRemapsToSpare) {
  const uint64_t victim = 1000;
  const Chs natural = layout_.ToChs(victim);
  ASSERT_TRUE(layout_.AddBadSector(victim));
  EXPECT_TRUE(layout_.IsRemapped(victim));
  const Chs spare = layout_.ToChs(victim);
  EXPECT_NE(spare, natural);
  // Spare lives on a spare track of the same zone.
  EXPECT_FALSE(layout_.IsDataTrack(spare.cylinder, spare.head));
  EXPECT_EQ(geo_.ZoneIndexOf(spare.cylinder), geo_.ZoneIndexOf(natural.cylinder));
  // The vacated natural position no longer maps to an LBA.
  EXPECT_EQ(layout_.ToLba(natural), kInvalidLba);
}

TEST_F(LayoutTest, AddBadSectorTwiceFails) {
  ASSERT_TRUE(layout_.AddBadSector(500));
  EXPECT_FALSE(layout_.AddBadSector(500));
  EXPECT_EQ(layout_.num_remapped_sectors(), 1u);
}

TEST_F(LayoutTest, ManyBadSectorsGetDistinctSpares) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> spares;
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_TRUE(layout_.AddBadSector(lba));
    const Chs s = layout_.ToChs(lba);
    spares.insert({s.cylinder, s.head, s.sector});
  }
  EXPECT_EQ(spares.size(), 30u);
}

TEST_F(LayoutTest, SpareSpaceExhausts) {
  // Zone 0 has one spare track of 40 sectors.
  for (uint64_t lba = 0; lba < 40; ++lba) {
    EXPECT_TRUE(layout_.AddBadSector(lba));
  }
  EXPECT_FALSE(layout_.AddBadSector(40));
}

TEST(LayoutSt39133, RoundTripSampled) {
  const DiskGeometry geo = MakeSt39133Geometry();
  DiskLayout layout(&geo);
  const uint64_t n = layout.num_data_sectors();
  EXPECT_GT(n, 17'000'000u);
  for (uint64_t lba = 0; lba < n; lba += 9973) {
    EXPECT_EQ(layout.ToLba(layout.ToChs(lba)), lba);
  }
  EXPECT_EQ(layout.ToLba(layout.ToChs(n - 1)), n - 1);
}

TEST(LayoutSt39133, ZoneBoundariesFallOnTrackBoundaries) {
  const DiskGeometry geo = MakeSt39133Geometry();
  DiskLayout layout(&geo);
  // Walk each zone transition: the sector before has sector == spt-1.
  uint64_t lba = 0;
  uint32_t prev_spt = geo.zones[0].sectors_per_track;
  for (uint64_t i = 0; i < layout.num_data_sectors(); i += 1) {
    const Chs chs = layout.ToChs(i);
    const uint32_t spt = geo.SectorsPerTrack(chs.cylinder);
    if (spt != prev_spt) {
      EXPECT_EQ(chs.sector, 0u);
      prev_spt = spt;
      lba = i;
    }
    // Skip ahead within the track for speed.
    i += spt - chs.sector - 1;
  }
  EXPECT_GT(lba, 0u);
}

}  // namespace
}  // namespace mimdraid
