// Lint fixture: MDL000 — suppression comments must carry a reason.
// Not compiled into any target; consumed by the lint fixture test only.
#include <cstdint>

namespace mimdraid {
namespace lint_fixture {

uint64_t Sequence() {
  // mdl-ok(MDL004):
  static uint64_t seq = 0;  // reason missing above: both lines are findings
  return ++seq;
}

}  // namespace lint_fixture
}  // namespace mimdraid
