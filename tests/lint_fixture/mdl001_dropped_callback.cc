// Lint fixture: MDL001 — completion callback dropped on an early-return path.
// Not compiled into any target; consumed by the lint fixture test only.
#include <functional>

#include "src/io/array_backend.h"

namespace mimdraid {
namespace lint_fixture {

// The guard returns without invoking or forwarding `done`: the request would
// hang forever. This is the exact shape MDL001 exists to catch.
void SubmitGuarded(bool shutting_down, ArrayBackend::DoneFn done) {
  if (shutting_down) {
    return;  // seeded violation: `done` dropped on this path
  }
  IoResult r;
  done(r);
}

}  // namespace lint_fixture
}  // namespace mimdraid
