// Lint fixture: MDL002 — must-use results silently dropped.
// Not compiled into any target; consumed by the lint fixture test only.
#include "src/sim/simulator.h"

namespace mimdraid {
namespace lint_fixture {

void ForgetPendingTimer(Simulator* sim, EventId id) {
  sim->Cancel(id);  // seeded violation: success/failure never inspected
}

void VoidWithoutRationale(Simulator* sim, EventId id) {
  (void)sim->Cancel(id);  // seeded violation: cast with no rationale
}

void SanctionedDiscard(Simulator* sim, EventId id) {
  // mdl-ok(MDL002): teardown path, a missed cancel is harmless here
  (void)sim->Cancel(id);
}

}  // namespace lint_fixture
}  // namespace mimdraid
