// Lint fixture: MDL003 — microsecond value mixed with a bare literal.
// Not compiled into any target; consumed by the lint fixture test only.

namespace mimdraid {
namespace lint_fixture {

bool DeadlineSoon(double deadline_us) {
  return deadline_us < 5000;  // seeded violation: unit-less 5000
}

double Pad(double slack_us) {
  return slack_us + 250;  // seeded violation: unit-less 250
}

bool ZeroCompareIsFine(double wait_us) {
  return wait_us > 0;  // comparisons against 0 carry no unit: not flagged
}

}  // namespace lint_fixture
}  // namespace mimdraid
