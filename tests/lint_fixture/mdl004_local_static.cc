// Lint fixture: MDL004 — function-local static mutable state.
// Not compiled into any target; consumed by the lint fixture test only.
#include <cstdint>

namespace mimdraid {
namespace lint_fixture {

uint64_t NextRunId() {
  static uint64_t counter = 0;  // seeded violation: hidden cross-run state
  return ++counter;
}

int TableSize() {
  static constexpr int kSize = 64;  // constexpr is immutable: not flagged
  return kSize;
}

}  // namespace lint_fixture
}  // namespace mimdraid
