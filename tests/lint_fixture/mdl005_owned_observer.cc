// Lint fixture: MDL005 — borrowed observer held in an owning smart pointer.
// Not compiled into any target; consumed by the lint fixture test only.
#include <memory>

#include "src/obs/trace_collector.h"

namespace mimdraid {
namespace lint_fixture {

struct BadRig {
  std::unique_ptr<TraceCollector> collector;  // seeded violation: owning hold
};

struct GoodRig {
  TraceCollector* collector = nullptr;  // borrowed raw pointer: not flagged
};

}  // namespace lint_fixture
}  // namespace mimdraid
