// Lint fixture: MDL006 — queue head copied by value.
// Not compiled into any target; consumed by the lint fixture test only.
#include <functional>
#include <queue>

namespace mimdraid {
namespace lint_fixture {

struct Pending {
  double at = 0.0;
  std::function<void()> fn;
};

void DrainCopying(std::priority_queue<Pending>& q) {
  while (!q.empty()) {
    Pending next = q.top();  // seeded violation: deep-copies the closure
    q.pop();
    next.fn();
  }
}

double PeekInPlace(const std::priority_queue<Pending>& q) {
  return q.top().at;  // in-place use: not flagged
}

void DrainByReference(std::priority_queue<Pending>& q) {
  while (!q.empty()) {
    const Pending& next = q.top();  // reference bind: not flagged
    next.fn();
    q.pop();
  }
}

void DrainSuppressed(std::priority_queue<Pending>& q) {
  // mdl-ok(MDL006): fixture exercising a reasoned suppression
  Pending next = q.top();
  q.pop();
  next.fn();
}

}  // namespace lint_fixture
}  // namespace mimdraid
