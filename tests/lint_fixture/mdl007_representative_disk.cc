// Lint fixture: MDL007 — representative-disk parameter reads.
// Not compiled into any target; consumed by the lint fixture test only.
#include <cstdint>
#include <vector>

namespace mimdraid {
namespace lint_fixture {

struct Layout {
  uint32_t rpm = 10000;
  uint64_t sectors = 0;
};

struct FakeDisk {
  Layout layout;
  const Layout& geometry() const { return layout; }
};

struct DriveParams {
  uint32_t rpm = 10000;
};

class RepresentativeReader {
 public:
  uint32_t FirstRpm() const {
    return disks_[0]->geometry().rpm;  // seeded violation: disks_[0] read
  }

  uint64_t FrontSectors() const {
    return drives_.front().geometry().sectors;  // seeded violation: .front()
  }

  uint64_t SlotSectors(size_t slot) const {
    return disks_[slot]->geometry().sectors;  // per-slot index: not flagged
  }

  uint64_t TotalSectors() const {
    uint64_t total = 0;
    for (const FakeDisk* d : disks_) {  // whole-fleet iteration: not flagged
      total += d->geometry().sectors;
    }
    return total;
  }

  uint32_t SuppressedFirstRpm() const {
    // mdl-ok(MDL007): fixture exercising a reasoned suppression
    return disks_[0]->geometry().rpm;
  }

 private:
  std::vector<const FakeDisk*> disks_;
  std::vector<FakeDisk> drives_;
  DriveParams shared_params_;  // seeded violation: one params for all slots
  std::vector<DriveParams> per_slot_params_;  // per-slot vector: not flagged
};

}  // namespace lint_fixture
}  // namespace mimdraid
