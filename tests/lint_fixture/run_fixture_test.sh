#!/bin/sh
# Lint gate, run from ctest.
#
# 1. mimdraid_lint over the seeded fixtures must report exactly the golden
#    findings (byte-identical, exit 1): every check fires and stays anchored.
# 2. mimdraid_lint over the real tree must report nothing (exit 0).
set -e
repo="$1"
if [ -z "$repo" ]; then
  echo "usage: $0 <repo-root>" >&2
  exit 2
fi
cd "$repo"

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if python3 tools/analyze/mimdraid_lint tests/lint_fixture >"$out" 2>/dev/null
then
  echo "FAIL: lint reported no findings on the seeded fixtures" >&2
  exit 1
fi
diff -u tests/lint_fixture/expected_findings.txt "$out"

python3 tools/analyze/mimdraid_lint src bench tests examples tools
echo "lint fixture + clean-tree gates passed"
