// Property tests for the Section 2 models and the Configurator, swept over
// parameter grids (disk counts, p ratios, queue depths, S/R ratios).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/model/analytic.h"
#include "src/model/configurator.h"

namespace mimdraid {
namespace {

class ModelGrid
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {
 protected:
  int d() const { return std::get<0>(GetParam()); }
  double p() const { return std::get<1>(GetParam()); }
  double q() const { return std::get<2>(GetParam()); }
};

constexpr double kS = 9900.0;
constexpr double kR = 6000.0;

TEST_P(ModelGrid, ContinuousOptimumBeatsNeighbors) {
  if (p() <= 0.5) {
    GTEST_SKIP() << "replication precluded";
  }
  const AspectRatio opt = q() > 3.0
                              ? OptimalAspectForRlook(kS, kR, d(), p(), q())
                              : OptimalAspectForMixed(kS, kR, d(), p());
  const auto eval = [&](double ds, double dr) {
    const double seek = q() > 3.0 ? kS / (q() * ds) : kS / (3.0 * ds);
    return seek + p() * kR / (2.0 * dr) +
           (1.0 - p()) * (kR - kR / (2.0 * dr));
  };
  const double at_opt = eval(opt.ds, opt.dr);
  for (double f : {0.7, 0.85, 1.2, 1.4}) {
    const double ds = opt.ds * f;
    EXPECT_GE(eval(ds, d() / ds) + 1e-9, at_opt) << "f=" << f;
  }
}

TEST_P(ModelGrid, BestLatencyDecreasesWithDisks) {
  if (p() <= 0.5) {
    GTEST_SKIP();
  }
  EXPECT_LT(BestMixedLatencyUs(kS, kR, 2 * d(), p()),
            BestMixedLatencyUs(kS, kR, d(), p()) + 1e-9);
}

TEST_P(ModelGrid, ThroughputMonotoneInQueue) {
  const double n1 = 300.0;
  double prev = 0.0;
  for (double total_q : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    const double nd = ArrayThroughput(d(), total_q, n1);
    EXPECT_GE(nd + 1e-9, prev);
    EXPECT_LE(nd, d() * n1 + 1e-9);
    prev = nd;
  }
}

TEST_P(ModelGrid, ConfiguratorRespectsConstraints) {
  ConfiguratorInputs in;
  in.num_disks = d();
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = p();
  in.queue_depth = q();
  const ConfigCandidate choice = ChooseConfig(in);
  EXPECT_EQ(choice.aspect.TotalDisks(), d());
  EXPECT_LE(choice.aspect.dr, in.max_dr);
  EXPECT_EQ(choice.aspect.dm, 1);
  EXPECT_EQ(d() % choice.aspect.dr, 0);
  if (p() <= 0.5) {
    EXPECT_EQ(choice.aspect.dr, 1);  // pure striping
  }
}

TEST_P(ModelGrid, ConfiguratorPickNeverExceedsContinuousOptimum) {
  if (p() <= 0.5) {
    GTEST_SKIP();
  }
  ConfiguratorInputs in;
  in.num_disks = d();
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = p();
  in.queue_depth = q();
  const ConfigCandidate choice = ChooseConfig(in);
  const AspectRatio continuous =
      q() > 3.0 ? OptimalAspectForRlook(kS, kR, d(), p(), q())
                : OptimalAspectForMixed(kS, kR, d(), p());
  // The paper's rule: largest factor at or below the continuous optimum
  // (and at most max_dr); Dr is still at least 1 when the optimum dips
  // below one replica.
  const double allowed = std::max(
      1.0, std::min(static_cast<double>(in.max_dr), continuous.dr));
  EXPECT_LE(choice.aspect.dr, allowed + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(::testing::Values(2, 4, 6, 12, 36),
                       ::testing::Values(0.4, 0.6, 0.8, 1.0),
                       ::testing::Values(1.0, 8.0, 32.0)),
    [](const auto& suite_info) {
      return "D" + std::to_string(std::get<0>(suite_info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(suite_info.param) * 100)) +
             "_q" +
             std::to_string(static_cast<int>(std::get<2>(suite_info.param)));
    });

// Scaling law: the rule-of-thumb sqrt(D) improvement (Section 2.6).
TEST(ModelScaling, SqrtDImprovement) {
  for (int d : {4, 9, 16, 25}) {
    const double t1 = BestReadLatencyUs(kS, kR, 1);
    const double td = BestReadLatencyUs(kS, kR, d);
    EXPECT_NEAR(t1 / td, std::sqrt(static_cast<double>(d)), 1e-9);
  }
}

}  // namespace
}  // namespace mimdraid
