#include <gtest/gtest.h>

#include <cmath>

#include "src/model/analytic.h"
#include "src/model/configurator.h"

namespace mimdraid {
namespace {

constexpr double kS = 10'000.0;  // max seek, µs
constexpr double kR = 6'000.0;   // rotation, µs

TEST(Analytic, SeekReductionFormulas) {
  EXPECT_DOUBLE_EQ(SingleDiskAverageSeekUs(kS), kS / 3);
  EXPECT_DOUBLE_EQ(MirrorAverageSeekUs(kS, 1), kS / 3);
  EXPECT_DOUBLE_EQ(MirrorAverageSeekUs(kS, 4), kS / 9);
  EXPECT_DOUBLE_EQ(StripeAverageSeekUs(kS, 4), kS / 12);
}

TEST(Analytic, StripingBeatsMirroringOnSeek) {
  for (int d = 2; d <= 16; ++d) {
    EXPECT_LT(StripeAverageSeekUs(kS, d), MirrorAverageSeekUs(kS, d));
  }
}

TEST(Analytic, RotationFormulas) {
  EXPECT_DOUBLE_EQ(EvenReplicaReadRotationUs(kR, 1), kR / 2);
  EXPECT_DOUBLE_EQ(EvenReplicaReadRotationUs(kR, 3), kR / 6);
  EXPECT_DOUBLE_EQ(RandomReplicaReadRotationUs(kR, 3), kR / 4);
  EXPECT_DOUBLE_EQ(ReplicaWriteRotationUs(kR, 3), kR - kR / 6);
}

TEST(Analytic, EvenBeatsRandomPlacement) {
  for (int d = 2; d <= 6; ++d) {
    EXPECT_LT(EvenReplicaReadRotationUs(kR, d),
              RandomReplicaReadRotationUs(kR, d));
  }
}

TEST(Analytic, ReadPlusWriteRotationIsFullRotation) {
  // R_r(D) + R_w(D) = R (Section 2.2).
  for (int d = 1; d <= 6; ++d) {
    EXPECT_DOUBLE_EQ(
        EvenReplicaReadRotationUs(kR, d) + ReplicaWriteRotationUs(kR, d), kR);
  }
}

TEST(Analytic, SrReadLatencyComposes) {
  EXPECT_DOUBLE_EQ(SrReadLatencyUs(kS, kR, 2, 3),
                   kS / (3 * 2) + kR / (2 * 3));
  // Locality scales the seek term only.
  EXPECT_DOUBLE_EQ(SrReadLatencyUs(kS, kR, 2, 3, 4.0),
                   kS / (3 * 2 * 4.0) + kR / (2 * 3));
}

TEST(Analytic, OptimalAspectProductIsD) {
  for (int d : {2, 4, 6, 9, 12, 36}) {
    const AspectRatio a = OptimalAspectForReads(kS, kR, d);
    EXPECT_NEAR(a.ds * a.dr, d, 1e-9);
  }
}

TEST(Analytic, OptimalAspectMinimizesReadLatency) {
  // Continuous optimum beats all integer factorizations evaluated through
  // the same formula.
  const int d = 12;
  const double best = BestReadLatencyUs(kS, kR, d);
  for (int ds = 1; ds <= d; ++ds) {
    if (d % ds != 0) {
      continue;
    }
    const int dr = d / ds;
    EXPECT_GE(SrReadLatencyUs(kS, kR, ds, dr) + 1e-9, best);
  }
}

TEST(Analytic, BestReadLatencyScalesAsSqrtD) {
  const double t4 = BestReadLatencyUs(kS, kR, 4);
  const double t16 = BestReadLatencyUs(kS, kR, 16);
  EXPECT_NEAR(t4 / t16, 2.0, 1e-9);
}

TEST(Analytic, SlowRotationDemandsMoreReplicas) {
  const AspectRatio fast = OptimalAspectForReads(kS, kR, 12);
  const AspectRatio slow = OptimalAspectForReads(kS, 2 * kR, 12);
  EXPECT_GT(slow.dr, fast.dr);
  EXPECT_LT(slow.ds, fast.ds);
}

TEST(Analytic, MixedLatencyReducesToReadAtPOne) {
  EXPECT_DOUBLE_EQ(SrMixedLatencyUs(kS, kR, 2, 3, 1.0),
                   SrReadLatencyUs(kS, kR, 2, 3));
}

TEST(Analytic, MixedOptimumMatchesEqTen) {
  const double p = 0.8;
  const AspectRatio a = OptimalAspectForMixed(kS, kR, 12, p);
  EXPECT_NEAR(a.ds * a.dr, 12.0, 1e-9);
  // Perturbing the ratio (same product) must not improve Eq. (9)'s value at
  // the continuous optimum.
  const double at_opt =
      kS / (3 * a.ds) + p * kR / (2 * a.dr) + (1 - p) * (kR - kR / (2 * a.dr));
  for (double f : {0.8, 0.9, 1.1, 1.25}) {
    const double ds = a.ds * f;
    const double dr = 12.0 / ds;
    const double t =
        kS / (3 * ds) + p * kR / (2 * dr) + (1 - p) * (kR - kR / (2 * dr));
    EXPECT_GE(t + 1e-9, at_opt);
  }
}

TEST(Analytic, LowerPMeansFewerReplicas) {
  const AspectRatio high = OptimalAspectForMixed(kS, kR, 12, 0.95);
  const AspectRatio low = OptimalAspectForMixed(kS, kR, 12, 0.6);
  EXPECT_LT(low.dr, high.dr);
}

TEST(Analytic, RlookAmortizesSeekOverQueue) {
  const double t_q4 = RlookRequestTimeUs(kS, kR, 2, 3, 1.0, 4.0);
  const double t_q16 = RlookRequestTimeUs(kS, kR, 2, 3, 1.0, 16.0);
  EXPECT_GT(t_q4, t_q16);
}

TEST(Analytic, LongQueueDemandsMoreReplicas) {
  const AspectRatio q4 = OptimalAspectForRlook(kS, kR, 12, 1.0, 4.0);
  const AspectRatio q32 = OptimalAspectForRlook(kS, kR, 12, 1.0, 32.0);
  EXPECT_GT(q32.dr, q4.dr);
}

TEST(Analytic, ThroughputFormulas) {
  EXPECT_DOUBLE_EQ(SingleDiskThroughput(2700.0, 2300.0), 1e6 / 5000.0);
  // Eq. 16: with huge Q, throughput approaches D*N1.
  EXPECT_NEAR(ArrayThroughput(6, 1000.0, 100.0), 600.0, 1e-6);
  // With Q = D the derating is 1-(1-1/D)^D ~ 63%.
  EXPECT_NEAR(ArrayThroughput(6, 6.0, 100.0),
              6 * (1 - std::pow(5.0 / 6.0, 6)) * 100.0, 1e-9);
}

TEST(Configurator, PureStripingWhenWriteHeavy) {
  ConfiguratorInputs in;
  in.num_disks = 6;
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = 0.4;
  in.queue_depth = 1.0;
  const ConfigCandidate c = ChooseConfig(in);
  EXPECT_EQ(c.aspect.ds, 6);
  EXPECT_EQ(c.aspect.dr, 1);
}

TEST(Configurator, ReadOnlySixDisksPrefersRotationalReplicas) {
  ConfiguratorInputs in;
  in.num_disks = 6;
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = 1.0;
  in.queue_depth = 1.0;
  const ConfigCandidate c = ChooseConfig(in);
  EXPECT_GT(c.aspect.dr, 1);
  EXPECT_EQ(c.aspect.TotalDisks(), 6);
}

TEST(Configurator, RespectsMaxDr) {
  ConfiguratorInputs in;
  in.num_disks = 36;
  in.max_seek_us = kS;
  in.rotation_us = 4 * kR;  // strongly favors replication
  in.p = 1.0;
  in.queue_depth = 32.0;
  in.max_dr = 6;
  for (const ConfigCandidate& c : EnumerateConfigs(in)) {
    EXPECT_LE(c.aspect.dr, 6);
  }
}

TEST(Configurator, EnumerationCoversAllFactorizations) {
  ConfiguratorInputs in;
  in.num_disks = 12;
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = 1.0;
  const auto all = EnumerateConfigs(in);
  // Ds*Dr = 12 with Dr <= 6: (12,1),(6,2),(4,3),(3,4),(2,6) = 5 configs.
  EXPECT_EQ(all.size(), 5u);
  // Sorted by predicted latency.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].predicted_latency_us, all[i].predicted_latency_us);
  }
}

TEST(Configurator, MirroringEnumeratedWhenAllowed) {
  ConfiguratorInputs in;
  in.num_disks = 4;
  in.max_seek_us = kS;
  in.rotation_us = kR;
  in.p = 1.0;
  in.allow_mirroring = true;
  bool saw_mirror = false;
  for (const ConfigCandidate& c : EnumerateConfigs(in)) {
    EXPECT_EQ(c.aspect.TotalDisks(), 4);
    saw_mirror |= c.aspect.dm > 1;
  }
  EXPECT_TRUE(saw_mirror);
}

TEST(Configurator, AspectToString) {
  ArrayAspect a;
  a.ds = 9;
  a.dr = 4;
  a.dm = 1;
  EXPECT_EQ(a.ToString(), "9x4x1");
  EXPECT_EQ(a.TotalDisks(), 36);
  EXPECT_EQ(a.ReplicasPerBlock(), 4);
}

TEST(Configurator, PaperExampleCelloBaseSixDisks) {
  // Figure 7: with six disks the model recommends 2x3 for Cello base
  // (p high, q small, L = 4.14, S ~ 10 ms, R = 6 ms).
  ConfiguratorInputs in;
  in.num_disks = 6;
  in.max_seek_us = 9900.0;
  in.rotation_us = 6000.0;
  in.p = 1.0;
  in.queue_depth = 1.0;
  in.locality = 4.14;
  const ConfigCandidate c = ChooseConfig(in);
  EXPECT_EQ(c.aspect.ds, 2);
  EXPECT_EQ(c.aspect.dr, 3);
}

}  // namespace
}  // namespace mimdraid
