// Control case: the dimensionally valid strong-type operations must keep
// compiling. If this file fails, the negative cases above are failing for
// the wrong reason (broken include path, toolchain flags, ...), not because
// the type system rejected them.
#include "src/util/strong_types.h"

int main() {
  using mimdraid::BlockAddr;
  using mimdraid::SimDuration;
  using mimdraid::SimTime;
  using mimdraid::SlotId;

  SimTime t(100);
  SimDuration d(25);
  t += d;
  const SimTime later = t + d;
  const SimDuration gap = later - t;
  const SimDuration total = gap + later.SinceStart();
  (void)total;

  SlotId slot(2);
  ++slot;
  BlockAddr addr(4096);
  const BlockAddr next = addr + 8;
  const int64_t span = next - addr;
  (void)span;
  return slot.value() == 3 && addr.value() == 4096 ? 0 : 1;
}
