#!/bin/sh
# Negative-compile gate, run from ctest.
#
# The control case must compile; each negative case must be rejected by the
# compiler with a diagnostic that names the dimensional violation, proving
# the strong types actually forbid the operation (not that the file is
# broken for an unrelated reason).
set -e
cxx="$1"
repo="$2"
if [ -z "$cxx" ] || [ -z "$repo" ]; then
  echo "usage: $0 <c++-compiler> <repo-root>" >&2
  exit 2
fi

err=$(mktemp)
trap 'rm -f "$err"' EXIT

"$cxx" -std=c++20 -fsyntax-only -I"$repo" \
    "$repo/tests/negative_compile/control_ok.cc"
echo "PASS control_ok.cc compiles"

expect_reject() {
  file="$1"
  pattern="$2"
  if "$cxx" -std=c++20 -fsyntax-only -I"$repo" \
      "$repo/tests/negative_compile/$file" 2>"$err"; then
    echo "FAIL: $file compiled; the type system no longer rejects it" >&2
    exit 1
  fi
  if ! grep -qE "$pattern" "$err"; then
    echo "FAIL: $file was rejected, but not for the expected reason:" >&2
    cat "$err" >&2
    exit 1
  fi
  echo "PASS $file rejected ($pattern)"
}

expect_reject simtime_plus_simtime.cc "operator\+"
expect_reject slotid_to_blockaddr.cc "convert|no matching"
