// Negative-compile case: adding two absolute times is dimensionally
// meaningless, so SimTime + SimTime must not compile. (SimTime + SimDuration
// and SimTime - SimTime are the valid forms; see control_ok.cc.)
#include "src/util/strong_types.h"

int main() {
  mimdraid::SimTime a(1);
  mimdraid::SimTime b(2);
  auto c = a + b;  // expected error: no operator+(SimTime, SimTime)
  (void)c;
  return 0;
}
