// Negative-compile case: a drive slot index must never flow into a
// block-address parameter; the two id spaces are unrelated dimensions.
#include "src/util/strong_types.h"

namespace {
void TakesAddr(mimdraid::BlockAddr addr) { (void)addr; }
}  // namespace

int main() {
  mimdraid::SlotId slot(3);
  TakesAddr(slot);  // expected error: SlotId does not convert to BlockAddr
  return 0;
}
