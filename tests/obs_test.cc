// Observability-layer tests: per-request phase attribution, zero-cost
// disablement, Chrome trace export, the json_lite parser behind the trace
// validator, and the StatsRegistry export target.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/calib/predictor.h"
#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/disk/sim_disk.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/json_lite.h"
#include "src/obs/stats_registry.h"
#include "src/obs/trace_collector.h"
#include "src/raid5/raid5_controller.h"
#include "src/raid5/raid5_layout.h"
#include "src/stats/latency_recorder.h"

namespace mimdraid {
namespace {

MimdRaidOptions BaseOptions(int ds, int dr, int dm,
                            SchedulerKind sched = SchedulerKind::kRsatf) {
  MimdRaidOptions o;
  o.aspect.ds = ds;
  o.aspect.dr = dr;
  o.aspect.dm = dm;
  o.scheduler = sched;
  o.dataset_sectors = 2'000'000;
  o.seed = 77;
  return o;
}

ClosedLoopOptions SmallLoop(double read_frac = 1.0) {
  ClosedLoopOptions c;
  c.outstanding = 3;
  c.read_frac = read_frac;
  c.sectors = 1;
  c.warmup_ops = 50;
  c.measure_ops = 400;
  return c;
}

TEST(TraceCollector, PhaseSumMatchesEndToEnd) {
  TraceCollector collector;
  MimdRaidOptions options = BaseOptions(2, 2, 1);
  options.collector = &collector;
  MimdRaid array(options);
  ClosedLoopOptions loop = SmallLoop(/*read_frac=*/0.7);
  loop.collector = &collector;
  RunClosedLoopOnArray(array, loop);

  ASSERT_GT(collector.requests().size(), 400u);
  EXPECT_EQ(collector.open_requests(), 0u);
  for (const RequestRecord& r : collector.requests()) {
    // The recovery residual is defined as the exact remainder, so the
    // identity holds to double rounding.
    EXPECT_NEAR(r.phases.SumUs(), r.EndToEndUs(), 1e-6);
    EXPECT_EQ(r.status, IoStatus::kOk);
    if (!r.is_write) {
      // Fault-free reads are fully explained by their final leg: the
      // residual is only the sub-µs rounding of the integer completion
      // timestamp.
      EXPECT_LT(std::abs(r.phases.recovery_us), 1.0)
          << "request " << r.id << " recovery " << r.phases.recovery_us;
    }
  }
}

TEST(TraceCollector, RecordsDiskOpsQueueDepthAndMarkers) {
  TraceCollector collector;
  MimdRaidOptions options = BaseOptions(1, 2, 1);
  options.collector = &collector;
  MimdRaid array(options);
  ClosedLoopOptions loop = SmallLoop();
  loop.collector = &collector;
  RunClosedLoopOnArray(array, loop);

  // Read-only on a mirror: one disk command per request (replica duplicates
  // are cancelled at dispatch), plus any calibration/maintenance commands.
  EXPECT_GE(collector.disk_ops().size(), collector.requests().size());
  EXPECT_GT(collector.queue_depths().size(), 0u);
  EXPECT_EQ(collector.num_slots(), 2u);
  ASSERT_EQ(collector.markers().size(), 2u);
  EXPECT_EQ(collector.markers()[0].name, "measure begin");
  EXPECT_EQ(collector.markers()[1].name, "measure end");
  // Disk-op decompositions are internally consistent too.
  for (const DiskOpRecord& op : collector.disk_ops()) {
    const double service =
        static_cast<double>((op.completion_us - op.start_us).us());
    const double parts =
        op.overhead_us + op.seek_us + op.rotational_us + op.transfer_us;
    EXPECT_NEAR(service, parts, 1.0) << "slot " << op.slot;
  }
}

TEST(TraceCollector, PredictionSamplesTrackServiceTime) {
  TraceCollector collector;
  MimdRaidOptions options = BaseOptions(1, 2, 1);
  options.collector = &collector;
  MimdRaid array(options);
  RunClosedLoopOnArray(array, SmallLoop());

  const PredictionErrorSummary pe = collector.PredictionError();
  ASSERT_GT(pe.samples, 0u);
  // The oracle predicts media time; the actual service also includes the
  // fixed command overhead, so the signed error is positive but bounded.
  EXPECT_GT(pe.mean_error_us, 0.0);
  EXPECT_LT(pe.mean_abs_error_us, 2000.0);
  EXPECT_GE(pe.rms_error_us, pe.mean_abs_error_us);
  EXPECT_GT(collector.FractionPredictedWithin(2000.0), 0.9);
  EXPECT_GT(collector.scheduler_picks(), 0u);
}

TEST(TraceCollector, DisabledCollectorLeavesResultsIdentical) {
  // A run with a collector attached must produce the same measured numbers
  // as a run without one: the observer must never perturb the simulation.
  TraceCollector collector;
  MimdRaidOptions traced_options = BaseOptions(2, 2, 1);
  traced_options.collector = &collector;
  MimdRaid with(traced_options);
  MimdRaid without(BaseOptions(2, 2, 1));

  ClosedLoopOptions loop = SmallLoop(/*read_frac=*/0.6);
  ClosedLoopOptions traced_loop = loop;
  traced_loop.collector = &collector;
  const RunResult a = RunClosedLoopOnArray(with, traced_loop);
  const RunResult b = RunClosedLoopOnArray(without, loop);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.MeanUs(), b.latency.MeanUs());
  EXPECT_EQ(a.latency.MaxUs(), b.latency.MaxUs());
  EXPECT_EQ(a.iops, b.iops);
}

TEST(TraceCollector, Raid5RmwWriteBooksEarlierPhasesAsRecovery) {
  Simulator sim;
  std::vector<std::unique_ptr<SimDisk>> sim_disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  for (uint32_t i = 0; i < 4; ++i) {
    sim_disks.push_back(std::make_unique<SimDisk>(
        &sim, MakeTestGeometry(), MakeTestSeekProfile(),
        DiskNoiseModel::None(), 17 + i, i * 500.0));
    preds.push_back(
        std::make_unique<OraclePredictor>(sim_disks.back().get(), 0.0));
    dptr.push_back(sim_disks.back().get());
    pptr.push_back(preds.back().get());
  }
  Raid5Layout layout(4, 16, 2000);
  TraceCollector collector;
  Raid5ControllerOptions options;
  options.collector = &collector;
  Raid5Controller controller(&sim, dptr, pptr, &layout, options);

  bool done = false;
  controller.Submit(DiskOp::kWrite, 100, 4, [&](const IoResult&) {
    done = true;
  });
  while (!done) {
    ASSERT_TRUE(sim.Step());
  }

  ASSERT_EQ(collector.requests().size(), 1u);
  const RequestRecord& r = collector.requests()[0];
  EXPECT_TRUE(r.is_write);
  EXPECT_NEAR(r.phases.SumUs(), r.EndToEndUs(), 1e-6);
  // A small write is a read-modify-write: the read phase precedes the final
  // write leg and must land in the recovery residual, not vanish.
  EXPECT_GT(r.phases.recovery_us, 0.0);
  EXPECT_GT(collector.disk_ops().size(), 2u);  // 2 reads + 2 writes
}

TEST(ChromeTrace, EmitsParsableAndConsistentJson) {
  TraceCollector collector;
  MimdRaidOptions options = BaseOptions(1, 2, 1);
  options.collector = &collector;
  MimdRaid array(options);
  ClosedLoopOptions loop = SmallLoop();
  loop.measure_ops = 100;
  loop.collector = &collector;
  RunClosedLoopOnArray(array, loop);

  const std::string json = ChromeTraceJson(collector);
  const json_lite::ParseResult parsed = json_lite::Parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << " at " << parsed.error_offset;
  const json_lite::Value* events = parsed.value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t complete = 0;
  size_t begins = 0;
  size_t ends = 0;
  size_t counters = 0;
  size_t instants = 0;
  for (const json_lite::Value& e : events->AsArray()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.GetString("ph");
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.GetNumber("dur", -1.0), 0.0);
    } else if (ph == "b") {
      ++begins;
    } else if (ph == "e") {
      ++ends;
      // Phase breakdown rides on the end event and sums to the span.
      const json_lite::Value* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const double sum = args->GetNumber("queue_us") +
                         args->GetNumber("overhead_us") +
                         args->GetNumber("seek_us") +
                         args->GetNumber("rotational_us") +
                         args->GetNumber("transfer_us") +
                         args->GetNumber("recovery_us");
      EXPECT_GT(sum, 0.0);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "i") {
      ++instants;
    }
  }
  EXPECT_EQ(complete, collector.disk_ops().size());
  EXPECT_EQ(begins, collector.requests().size());
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(counters, collector.queue_depths().size());
  EXPECT_EQ(instants, collector.markers().size());
}

TEST(JsonLite, ParsesScalarsContainersAndEscapes) {
  const json_lite::ParseResult r = json_lite::Parse(
      R"({"a": [1, -2.5e2, true, false, null], "s": "x\"\\\n\tz", "n": {}})");
  ASSERT_TRUE(r.ok) << r.error;
  const json_lite::Value* a = r.value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 5u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsNumber(), -250.0);
  EXPECT_TRUE(a->AsArray()[2].AsBool());
  EXPECT_TRUE(a->AsArray()[4].is_null());
  EXPECT_EQ(r.value.GetString("s"), "x\"\\\n\tz");
  EXPECT_TRUE(r.value.Find("n")->is_object());
}

TEST(JsonLite, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_lite::Parse("").ok);
  EXPECT_FALSE(json_lite::Parse("{").ok);
  EXPECT_FALSE(json_lite::Parse("[1,]").ok);
  EXPECT_FALSE(json_lite::Parse("{\"a\":1} trailing").ok);
  EXPECT_FALSE(json_lite::Parse("\"unterminated").ok);
  EXPECT_FALSE(json_lite::Parse("nul").ok);
  const json_lite::ParseResult r = json_lite::Parse("[1, }");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(JsonLite, RoundTripsEmittedEscapes) {
  // The escaping used by the Chrome exporter must survive our own parser.
  TraceCollector collector;
  collector.OnMarker("odd \"name\"\twith\nescapes\\", SimTime(5));
  const std::string json = ChromeTraceJson(collector);
  const json_lite::ParseResult r = json_lite::Parse(json);
  ASSERT_TRUE(r.ok) << r.error;
  const json_lite::Value* events = r.value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const json_lite::Value& e : events->AsArray()) {
    if (e.GetString("ph") == "i") {
      EXPECT_EQ(e.GetString("name"), "odd \"name\"\twith\nescapes\\");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StatsRegistry, SetIncrementGetAndDump) {
  StatsRegistry reg;
  EXPECT_EQ(reg.Get("missing"), 0.0);
  EXPECT_FALSE(reg.Contains("missing"));
  reg.Set("b.second", 2.0);
  reg.Set("a.first", 1.5);
  reg.Increment("a.first", 0.5);
  reg.Increment("c.counter");
  EXPECT_DOUBLE_EQ(reg.Get("a.first"), 2.0);
  EXPECT_DOUBLE_EQ(reg.Get("c.counter"), 1.0);
  EXPECT_EQ(reg.size(), 3u);
  const std::string dump = reg.Dump();
  // std::map ordering keeps the dump deterministic and sorted.
  EXPECT_LT(dump.find("a.first"), dump.find("b.second"));
  EXPECT_LT(dump.find("b.second"), dump.find("c.counter"));
}

TEST(StatsRegistry, CollectorExportPublishesSummaries) {
  TraceCollector collector;
  MimdRaidOptions options = BaseOptions(1, 2, 1);
  options.collector = &collector;
  MimdRaid array(options);
  ClosedLoopOptions loop = SmallLoop();
  loop.measure_ops = 100;
  RunClosedLoopOnArray(array, loop);

  StatsRegistry reg;
  collector.ExportTo(&reg);
  EXPECT_DOUBLE_EQ(reg.Get("trace.requests"),
                   static_cast<double>(collector.requests().size()));
  EXPECT_DOUBLE_EQ(reg.Get("trace.disk_ops"),
                   static_cast<double>(collector.disk_ops().size()));
  EXPECT_GT(reg.Get("trace.phase.rotational_us"), 0.0);
  EXPECT_GT(reg.Get("trace.prediction.samples"), 0.0);
  EXPECT_GT(reg.Get("trace.slot.00.utilization"), 0.0);
  EXPECT_TRUE(reg.Contains("trace.slot.01.utilization"));
}

TEST(TraceCollector, ClearResetsEverything) {
  TraceCollector collector;
  collector.OnRequestArrival(1, false, 0, 1, SimTime(100));
  collector.OnMarker("m", SimTime(200));
  collector.OnQueueDepth(0, SimTime(150), 3);
  EXPECT_EQ(collector.open_requests(), 1u);
  collector.Clear();
  EXPECT_EQ(collector.open_requests(), 0u);
  EXPECT_TRUE(collector.requests().empty());
  EXPECT_TRUE(collector.markers().empty());
  EXPECT_TRUE(collector.queue_depths().empty());
  EXPECT_EQ(collector.num_slots(), 0u);
  EXPECT_EQ(collector.SpanEndUs(), SimTime(0));
}

TEST(ThroughputMeter, UnstartedMeterReportsZero) {
  ThroughputMeter meter;
  meter.RecordCompletion();
  meter.RecordCompletion();
  // Without Start() there is no observation window; the rate must read 0
  // instead of dividing by "time since simulated zero".
  EXPECT_FALSE(meter.started());
  EXPECT_EQ(meter.Iops(SimTime(1'000'000)), 0.0);
  meter.Start(SimTime(1'000'000));
  meter.RecordCompletion();
  EXPECT_TRUE(meter.started());
  EXPECT_DOUBLE_EQ(meter.Iops(SimTime(2'000'000)), 1.0);
}

}  // namespace
}  // namespace mimdraid
