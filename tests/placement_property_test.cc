// Property tests for SrDiskPlacement across geometries and replication
// degrees: the invariants that make the SR-Array work.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "src/array/placement.h"
#include "src/disk/geometry.h"
#include "src/disk/layout.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

enum class Geo { kTest, kSt39133 };

class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<Geo, int>> {
 protected:
  PlacementProperty()
      : geo_(std::get<0>(GetParam()) == Geo::kTest ? MakeTestGeometry()
                                                   : MakeSt39133Geometry()),
        layout_(&geo_),
        placement_(&layout_, std::get<1>(GetParam())),
        dr_(std::get<1>(GetParam())) {}

  DiskGeometry geo_;
  DiskLayout layout_;
  SrDiskPlacement placement_;
  int dr_;
};

TEST_P(PlacementProperty, ReplicasShareCylinderOnDistinctTracks) {
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const uint64_t s = rng.UniformU64(placement_.capacity_sectors());
    std::set<uint32_t> heads;
    const uint32_t cyl = layout_.ToChs(placement_.PhysicalLba(s, 0)).cylinder;
    for (int r = 0; r < dr_; ++r) {
      const Chs chs = layout_.ToChs(placement_.PhysicalLba(s, r));
      EXPECT_EQ(chs.cylinder, cyl);
      EXPECT_TRUE(heads.insert(chs.head).second);
    }
  }
}

TEST_P(PlacementProperty, ReplicasEvenlySpacedInAngle) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t s = rng.UniformU64(placement_.capacity_sectors());
    const Chs base = layout_.ToChs(placement_.PhysicalLba(s, 0));
    const double spt = geo_.SectorsPerTrack(base.cylinder);
    for (int r = 1; r < dr_; ++r) {
      const Chs chs = layout_.ToChs(placement_.PhysicalLba(s, r));
      double gap = layout_.AngleOf(chs) - layout_.AngleOf(base);
      gap -= std::floor(gap);
      EXPECT_NEAR(gap, static_cast<double>(r) / dr_, 1.0 / spt + 1e-9)
          << "s=" << s << " r=" << r;
    }
  }
}

TEST_P(PlacementProperty, NoPhysicalAliasing) {
  // Distinct (logical sector, replica) pairs map to distinct physical LBAs.
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const uint64_t s = rng.UniformU64(placement_.capacity_sectors());
    if (!seen.insert(~s).second) {  // marker to dedupe logical draws
      continue;
    }
    for (int r = 0; r < dr_; ++r) {
      EXPECT_TRUE(seen.insert(placement_.PhysicalLba(s, r)).second)
          << "s=" << s << " r=" << r;
    }
  }
}

TEST_P(PlacementProperty, CapacityConsistentWithGroups) {
  // Total capacity is the sum over cylinders of groups * SPT; groups can
  // never exceed heads / dr.
  EXPECT_LE(placement_.capacity_sectors(),
            layout_.num_data_sectors() / static_cast<uint64_t>(dr_) +
                geo_.num_cylinders * geo_.zones[0].sectors_per_track);
  EXPECT_GT(placement_.capacity_sectors(), 0u);
}

TEST_P(PlacementProperty, ContiguousRunNeverZeroAndBounded) {
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const uint64_t s = rng.UniformU64(placement_.capacity_sectors());
    const uint32_t run = placement_.ContiguousRun(s);
    EXPECT_GE(run, 1u);
    EXPECT_LE(run, geo_.zones[0].sectors_per_track);
    EXPECT_LE(s + run, placement_.capacity_sectors() +
                           geo_.zones[0].sectors_per_track);
  }
}

TEST_P(PlacementProperty, CylinderSpanMonotoneInData) {
  uint32_t prev = 0;
  for (uint64_t frac = 1; frac <= 8; ++frac) {
    const uint64_t sectors = placement_.capacity_sectors() * frac / 8;
    if (sectors == 0) {
      continue;
    }
    const uint32_t span = placement_.CylinderSpan(sectors);
    EXPECT_GE(span, prev);
    prev = span;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGeometries, PlacementProperty,
    ::testing::Values(std::tuple{Geo::kTest, 1}, std::tuple{Geo::kTest, 2},
                      std::tuple{Geo::kTest, 4}, std::tuple{Geo::kSt39133, 1},
                      std::tuple{Geo::kSt39133, 2},
                      std::tuple{Geo::kSt39133, 3},
                      std::tuple{Geo::kSt39133, 4},
                      std::tuple{Geo::kSt39133, 6}),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param) == Geo::kTest ? "Test"
                                                               : "St39133") +
             "_Dr" + std::to_string(std::get<1>(suite_info.param));
    });

}  // namespace
}  // namespace mimdraid
