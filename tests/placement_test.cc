#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/array/placement.h"
#include "src/disk/geometry.h"
#include "src/disk/layout.h"

namespace mimdraid {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : geo_(MakeTestGeometry()), layout_(&geo_) {}
  DiskGeometry geo_;
  DiskLayout layout_;
};

TEST_F(PlacementTest, Dr1CapacityIsFullDisk) {
  SrDiskPlacement p(&layout_, 1);
  EXPECT_EQ(p.capacity_sectors(), layout_.num_data_sectors());
}

TEST_F(PlacementTest, Dr2HalvesCapacityApproximately) {
  SrDiskPlacement p1(&layout_, 1);
  SrDiskPlacement p2(&layout_, 2);
  // Dr=2 on 4 heads: 2 groups/cylinder vs 4 tracks (odd-track cylinders lose
  // a bit more).
  EXPECT_LT(p2.capacity_sectors(), p1.capacity_sectors() / 2 + 100);
  EXPECT_GT(p2.capacity_sectors(), p1.capacity_sectors() / 3);
}

TEST_F(PlacementTest, Dr1PhysicalIsIdentityOrder) {
  SrDiskPlacement p(&layout_, 1);
  // Logical sector s maps to the s-th data sector in LBA order.
  for (uint64_t s = 0; s < 500; s += 7) {
    EXPECT_EQ(p.PhysicalLba(s, 0), s);
  }
}

TEST_F(PlacementTest, ReplicasShareCylinderDifferentTracks) {
  SrDiskPlacement p(&layout_, 2);
  for (uint64_t s = 0; s < p.capacity_sectors(); s += 97) {
    const Chs a = layout_.ToChs(p.PhysicalLba(s, 0));
    const Chs b = layout_.ToChs(p.PhysicalLba(s, 1));
    EXPECT_EQ(a.cylinder, b.cylinder) << "s=" << s;
    EXPECT_NE(a.head, b.head) << "s=" << s;
  }
}

TEST_F(PlacementTest, ReplicasEvenlySpacedInAngle) {
  SrDiskPlacement p(&layout_, 2);
  for (uint64_t s = 0; s < p.capacity_sectors(); s += 211) {
    const Chs a = layout_.ToChs(p.PhysicalLba(s, 0));
    const Chs b = layout_.ToChs(p.PhysicalLba(s, 1));
    double gap = layout_.AngleOf(b) - layout_.AngleOf(a);
    gap -= std::floor(gap);
    const double spt = geo_.SectorsPerTrack(a.cylinder);
    // Half a revolution within one slot of rounding.
    EXPECT_NEAR(gap, 0.5, 1.0 / spt + 1e-9) << "s=" << s;
  }
}

TEST_F(PlacementTest, FourWayReplicasEvenlySpaced) {
  SrDiskPlacement p(&layout_, 4);
  const uint64_t s = 123;
  const Chs base = layout_.ToChs(p.PhysicalLba(s, 0));
  const double spt = geo_.SectorsPerTrack(base.cylinder);
  for (int r = 1; r < 4; ++r) {
    const Chs c = layout_.ToChs(p.PhysicalLba(s, r));
    double gap = layout_.AngleOf(c) - layout_.AngleOf(base);
    gap -= std::floor(gap);
    EXPECT_NEAR(gap, r / 4.0, 1.0 / spt + 1e-9) << "r=" << r;
  }
}

TEST_F(PlacementTest, BaseAngleRotatesWholeSet) {
  SrDiskPlacement p(&layout_, 2);
  const uint64_t s = 345;
  const Chs plain = layout_.ToChs(p.PhysicalLba(s, 0, 0.0));
  const Chs shifted = layout_.ToChs(p.PhysicalLba(s, 0, 0.25));
  double gap = layout_.AngleOf(shifted) - layout_.AngleOf(plain);
  gap -= std::floor(gap);
  const double spt = geo_.SectorsPerTrack(plain.cylinder);
  EXPECT_NEAR(gap, 0.25, 1.0 / spt + 1e-9);
}

TEST_F(PlacementTest, DistinctLogicalSectorsDistinctPhysical) {
  SrDiskPlacement p(&layout_, 2);
  std::set<uint64_t> seen;
  for (uint64_t s = 0; s < 2000; ++s) {
    for (int r = 0; r < 2; ++r) {
      EXPECT_TRUE(seen.insert(p.PhysicalLba(s, r)).second)
          << "s=" << s << " r=" << r;
    }
  }
}

TEST_F(PlacementTest, ContiguousRunWithinTrack) {
  SrDiskPlacement p(&layout_, 2);
  // Run from a track-group start covers a whole track.
  EXPECT_EQ(p.ContiguousRun(0), 40u);
  EXPECT_EQ(p.ContiguousRun(5), 35u);
  // Each replica advances one sector per logical sector, wrapping around its
  // track ring (ArrayLayout::Map clips fragments at the wrap).
  for (int r = 0; r < 2; ++r) {
    const uint64_t base = p.PhysicalLba(8, r);
    const Chs base_chs = layout_.ToChs(base);
    const uint64_t track_start = base - base_chs.sector;
    const uint32_t spt = geo_.SectorsPerTrack(base_chs.cylinder);
    for (uint32_t i = 1; i < p.ContiguousRun(8); ++i) {
      const uint64_t expected =
          track_start + (base_chs.sector + i) % spt;
      EXPECT_EQ(p.PhysicalLba(8 + i, r), expected) << "r=" << r << " i=" << i;
    }
  }
}

TEST_F(PlacementTest, CylinderOfMonotone) {
  SrDiskPlacement p(&layout_, 2);
  uint32_t prev = 0;
  for (uint64_t s = 0; s < p.capacity_sectors(); s += 40) {
    const uint32_t c = p.CylinderOf(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_F(PlacementTest, CylinderSpanGrowsWithData) {
  SrDiskPlacement p(&layout_, 1);
  const uint32_t half = p.CylinderSpan(p.capacity_sectors() / 2);
  const uint32_t full = p.CylinderSpan(p.capacity_sectors());
  EXPECT_LT(half, full);
  EXPECT_EQ(full, geo_.num_cylinders - 1);
}

TEST_F(PlacementTest, HigherDrUsesMoreCylindersForSameData) {
  SrDiskPlacement p1(&layout_, 1);
  SrDiskPlacement p2(&layout_, 2);
  const uint64_t data = p2.capacity_sectors() / 2;
  EXPECT_GT(p2.CylinderSpan(data), p1.CylinderSpan(data));
}

TEST(PlacementSt39133, SixWayReplicationWorks) {
  const DiskGeometry geo = MakeSt39133Geometry();
  DiskLayout layout(&geo);
  SrDiskPlacement p(&layout, 6);
  EXPECT_GT(p.capacity_sectors(), 2'000'000u);
  const uint64_t s = 1'000'000;
  const Chs base = layout.ToChs(p.PhysicalLba(s, 0));
  const double spt = geo.SectorsPerTrack(base.cylinder);
  for (int r = 1; r < 6; ++r) {
    const Chs c = layout.ToChs(p.PhysicalLba(s, r));
    EXPECT_EQ(c.cylinder, base.cylinder);
    double gap = layout.AngleOf(c) - layout.AngleOf(base);
    gap -= std::floor(gap);
    EXPECT_NEAR(gap, r / 6.0, 1.0 / spt + 1e-9);
  }
}

}  // namespace
}  // namespace mimdraid
