#include <gtest/gtest.h>

#include "src/calib/calibration.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

// Runs a random single-sector read workload through a predictor and returns
// its accuracy statistics.
template <typename MakePredictorFn>
PredictorStats RunPredictedWorkload(SimDisk& disk, Simulator& sim,
                                    MakePredictorFn make_predictor, int ops,
                                    uint64_t seed) {
  auto predictor = make_predictor();
  Rng rng(seed);
  PredictorStats stats;
  for (int i = 0; i < ops; ++i) {
    const uint64_t lba = rng.UniformU64(disk.num_sectors());
    const AccessPlan plan =
        predictor->Predict(sim.Now(), BlockAddr(lba), 1, false);
    predictor->OnDispatch(sim.Now(), BlockAddr(lba), 1, false, plan.total_us);
    bool done = false;
    SimTime completion;
    disk.Start(DiskOp::kRead, BlockAddr(lba), 1, [&](const DiskOpResult& r) {
      completion = r.completion_us;
      done = true;
    });
    while (!done) {
      sim.Step();
    }
    predictor->OnCompletion(completion, BlockAddr(lba), 1);
  }
  return predictor->stats();
}

TEST(OraclePredictor, NoiseFreePredictionsAreExact) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0);
  const PredictorStats stats = RunPredictedWorkload(
      disk, sim,
      [&] { return std::make_unique<OraclePredictor>(&disk, 0.0); }, 300, 9);
  EXPECT_EQ(stats.misses, 0u);
  // Errors bounded by timestamp integer rounding.
  EXPECT_LT(std::abs(stats.error_us.mean()), 1.0);
  EXPECT_LT(stats.error_us.max(), 1.5);
  EXPECT_LT(stats.DemeritUs(), 1.5);
}

TEST(OraclePredictor, NoisyDiskHasBoundedErrors) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::Prototype(), /*seed=*/2,
               /*spindle_phase_us=*/500.0);
  const PredictorStats stats = RunPredictedWorkload(
      disk, sim,
      [&] { return std::make_unique<OraclePredictor>(&disk, 0.0); }, 500, 10);
  // Without slack the oracle mispredicts only when jitter wraps a tight
  // rotational wait; those are the (rare) misses.
  EXPECT_LT(stats.MissRate(), 0.15);
  EXPECT_LT(std::abs(stats.error_us.mean()), 80.0);
}

class CalibratedPredictorTest : public ::testing::Test {
 protected:
  CalibratedPredictorTest()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::Prototype(), /*seed=*/3,
              /*spindle_phase_us=*/1111.0, 6000.0 * (1 - 18e-6)) {}

  Simulator sim_;
  SimDisk disk_;
};

TEST_F(CalibratedPredictorTest, TableTwoStyleAccuracy) {
  // Build the full software predictor: rotation/phase estimation + extracted
  // seek profile, then measure prediction accuracy on a random read workload
  // (this is the Table 2 experiment in miniature).
  CalibrationOptions options;
  options.seek.num_distances = 10;
  options.seek.searches_per_distance = 3;
  auto predictor = MakeCalibratedPredictor(&sim_, &disk_, options);
  ASSERT_NE(predictor, nullptr);

  Rng rng(17);
  for (int i = 0; i < 800; ++i) {
    // Mirror the scheduler's behavior: skip targets whose rotational wait is
    // inside the slack (RSATF would take another replica).
    uint64_t lba = rng.UniformU64(disk_.num_sectors());
    AccessPlan plan = predictor->Predict(sim_.Now(), BlockAddr(lba), 1, false);
    for (int retry = 0;
         retry < 8 && plan.rotational_us < predictor->SlackUs(); ++retry) {
      lba = rng.UniformU64(disk_.num_sectors());
      plan = predictor->Predict(sim_.Now(), BlockAddr(lba), 1, false);
    }
    predictor->OnDispatch(sim_.Now(), BlockAddr(lba), 1, false, plan.total_us);
    bool done = false;
    SimTime completion;
    disk_.Start(DiskOp::kRead, BlockAddr(lba), 1, [&](const DiskOpResult& r) {
      completion = r.completion_us;
      done = true;
    });
    while (!done) {
      sim_.Step();
    }
    predictor->OnCompletion(completion, BlockAddr(lba), 1);
  }
  const PredictorStats& stats = predictor->stats();
  // Paper (Table 2): 0.22% misses. Give headroom but require high accuracy.
  EXPECT_LT(stats.MissRate(), 0.05);
  EXPECT_EQ(stats.predictions, 800u);
}

TEST_F(CalibratedPredictorTest, SlackFeedbackRaisesSlackUnderMisses) {
  SlackFeedbackOptions slack;
  slack.initial_slack_us = 100.0;
  slack.window = 50;
  HeadPositionPredictor predictor(&disk_.layout(), MakeTestSeekProfile(),
                                  6000.0, 0.0, 0, slack);
  const double initial = predictor.SlackUs();
  // Feed it a stream of misses: predicted far below actual.
  for (int i = 0; i < 200; ++i) {
    predictor.OnDispatch(SimTime(0), BlockAddr(0), 1, false, 100.0);
    predictor.OnCompletion(SimTime(100 + 5900), BlockAddr(0),
                           1);  // error ~ +5.9 ms = miss
  }
  EXPECT_GT(predictor.SlackUs(), initial);
}

TEST_F(CalibratedPredictorTest, SlackFeedbackDecaysWhenAccurate) {
  SlackFeedbackOptions slack;
  slack.initial_slack_us = 800.0;
  slack.window = 50;
  HeadPositionPredictor predictor(&disk_.layout(), MakeTestSeekProfile(),
                                  6000.0, 0.0, 0, slack);
  for (int i = 0; i < 500; ++i) {
    predictor.OnDispatch(SimTime(0), BlockAddr(0), 1, false, 100.0);
    predictor.OnCompletion(SimTime(100), BlockAddr(0), 1);  // exact
  }
  EXPECT_LT(predictor.SlackUs(), 800.0);
  EXPECT_GE(predictor.SlackUs(), slack.min_slack_us);
}

TEST_F(CalibratedPredictorTest, HeadTrackingFollowsCompletions) {
  HeadPositionPredictor predictor(&disk_.layout(), MakeTestSeekProfile(),
                                  6000.0, 0.0, 0);
  const uint64_t lba = 3000;
  predictor.OnDispatch(SimTime(0), BlockAddr(lba), 4, false, 0.0);
  predictor.OnCompletion(SimTime(10000), BlockAddr(lba), 4);
  const Chs last = disk_.layout().ToChs(lba + 3);
  EXPECT_EQ(predictor.Head().cylinder, last.cylinder);
  EXPECT_EQ(predictor.Head().head, last.head);
}

TEST_F(CalibratedPredictorTest, EffectiveServiceAddsRotationBelowSlack) {
  SlackFeedbackOptions slack;
  slack.initial_slack_us = 400.0;
  HeadPositionPredictor predictor(&disk_.layout(), MakeTestSeekProfile(),
                                  6000.0, 0.0, 0, slack);
  AccessPlan risky;
  risky.rotational_us = 100.0;
  risky.total_us = 700.0;
  AccessPlan safe;
  safe.rotational_us = 900.0;
  safe.total_us = 1500.0;
  EXPECT_NEAR(predictor.EffectiveServiceUs(risky), 700.0 + 6000.0, 1e-9);
  EXPECT_NEAR(predictor.EffectiveServiceUs(safe), 1500.0, 1e-9);
}

TEST_F(CalibratedPredictorTest, ReferenceObservationsRefreshModel) {
  HeadPositionPredictor predictor(&disk_.layout(), MakeTestSeekProfile(),
                                  6000.0, 0.0, 0);
  // Feed a lattice with a slightly different rotation.
  for (int i = 0; i < 10; ++i) {
    predictor.AddReferenceObservation(static_cast<SimTime>(i * 5 * 6002.0));
  }
  EXPECT_NEAR(predictor.RotationUs(), 6002.0, 0.5);
}

}  // namespace
}  // namespace mimdraid
