#include <gtest/gtest.h>

#include "src/calib/calibration.h"
#include "src/calib/prober.h"
#include "src/calib/rotation_estimator.h"
#include "src/calib/sync_disk.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

// Builds a calibrated prober against a disk and returns (prober inputs).
struct ProbeRig {
  explicit ProbeRig(const DiskGeometry& geometry, uint64_t seed = 21,
                    double phase = 987.0)
      : geometry_copy(geometry),
        disk(&sim, geometry_copy, MakeTestSeekProfile(),
             DiskNoiseModel::Prototype(), seed, phase),
        sync(&sim, &disk) {
    CalibrationOptions options;
    options.extract_seek_profile = false;
    cal = CalibrateDisk(&sim, &disk, options);
    spindle_phase = SpindlePhaseFromLattice(disk.layout(), 0,
                                            cal.lattice_phase_us,
                                            cal.rotation_us);
  }

  Simulator sim;
  DiskGeometry geometry_copy;
  SimDisk disk;
  SyncDisk sync;
  CalibrationResult cal;
  double spindle_phase = 0.0;
};

TEST(Prober, MeasuresEndAngleConsistentWithLayout) {
  ProbeRig rig(MakeTestGeometry());
  DiskProber prober(&rig.sync, rig.disk.num_sectors(),
                    rig.geometry_copy.num_heads, rig.cal.rotation_us,
                    rig.spindle_phase);
  for (uint64_t lba : {0ull, 100ull, 3333ull}) {
    const Chs chs = rig.disk.layout().ToChs(lba);
    const uint32_t spt = rig.geometry_copy.SectorsPerTrack(chs.cylinder);
    const double expected =
        static_cast<double>((rig.disk.layout().SlotOf(chs) + 1) % spt) / spt;
    const double got = prober.MeasureEndAngle(lba, 3);
    double diff = got - expected;
    diff -= std::round(diff);
    // Within ~2 slots (jitter + post-overhead bias).
    EXPECT_LT(std::abs(diff), 2.5 / spt) << "lba=" << lba;
  }
}

TEST(Prober, MeasureSptFindsTrackSize) {
  ProbeRig rig(MakeTestGeometry());
  DiskProber prober(&rig.sync, rig.disk.num_sectors(),
                    rig.geometry_copy.num_heads, rig.cal.rotation_us,
                    rig.spindle_phase);
  const DiskProber::TrackProbe t0 = prober.MeasureSptAt(0);
  EXPECT_EQ(t0.sectors_per_track, 40u);
  // Track starts are multiples of 40 in zone 0.
  EXPECT_EQ(t0.track_start_lba % 40, 0u);

  const uint64_t zone1_first = 118ull * 40;
  const DiskProber::TrackProbe t1 = prober.MeasureSptAt(zone1_first + 100);
  EXPECT_EQ(t1.sectors_per_track, 30u);
}

TEST(Prober, FullProbeRecoversTestGeometry) {
  ProbeRig rig(MakeTestGeometry());
  DiskProber prober(&rig.sync, rig.disk.num_sectors(),
                    rig.geometry_copy.num_heads, rig.cal.rotation_us,
                    rig.spindle_phase);
  const ProbeResult result = prober.Probe();
  ASSERT_EQ(result.zones.size(), rig.geometry_copy.zones.size());
  EXPECT_EQ(result.reserved_tracks, 1u);
  for (size_t z = 0; z < result.zones.size(); ++z) {
    const ProbedZone& probed = result.zones[z];
    const Zone& truth = rig.geometry_copy.zones[z];
    EXPECT_EQ(probed.sectors_per_track, truth.sectors_per_track) << "zone " << z;
    EXPECT_EQ(probed.track_skew, truth.track_skew) << "zone " << z;
    EXPECT_EQ(probed.cylinder_skew, truth.cylinder_skew) << "zone " << z;
    EXPECT_EQ(probed.first_cylinder, truth.first_cylinder) << "zone " << z;
    EXPECT_EQ(probed.inferred_spare_tracks, 1u) << "zone " << z;
  }
  // Reconstructed geometry matches the truth.
  const DiskGeometry rebuilt = result.ToGeometry(
      rig.geometry_copy.num_cylinders, rig.geometry_copy.num_heads,
      rig.geometry_copy.rpm, rig.geometry_copy.sector_bytes);
  ASSERT_TRUE(rebuilt.Valid());
  for (size_t z = 0; z < rebuilt.zones.size(); ++z) {
    EXPECT_EQ(rebuilt.zones[z].first_cylinder,
              rig.geometry_copy.zones[z].first_cylinder);
  }
}

TEST(Prober, FullProbeRecoversSt39133Geometry) {
  const DiskGeometry geometry = MakeSt39133Geometry();
  ProbeRig rig(geometry, /*seed=*/5, /*phase=*/4321.0);
  DiskProber prober(&rig.sync, rig.disk.num_sectors(), geometry.num_heads,
                    rig.cal.rotation_us, rig.spindle_phase);
  const ProbeResult result = prober.Probe();
  ASSERT_EQ(result.zones.size(), geometry.zones.size());
  EXPECT_EQ(result.reserved_tracks, 1u);
  for (size_t z = 0; z < result.zones.size(); ++z) {
    EXPECT_EQ(result.zones[z].sectors_per_track,
              geometry.zones[z].sectors_per_track)
        << "zone " << z;
    EXPECT_EQ(result.zones[z].track_skew, geometry.zones[z].track_skew)
        << "zone " << z;
    EXPECT_EQ(result.zones[z].cylinder_skew, geometry.zones[z].cylinder_skew)
        << "zone " << z;
    EXPECT_EQ(result.zones[z].first_cylinder, geometry.zones[z].first_cylinder)
        << "zone " << z;
  }
}

}  // namespace
}  // namespace mimdraid

namespace mimdraid {
namespace {

TEST(Prober, DefectScanFindsRemappedSectors) {
  // A drive with a few grown defects: the prober's angular scan must flag
  // exactly the remapped LBAs (their spare locations sit at foreign angles).
  Simulator sim;
  DiskGeometry geometry_copy = MakeTestGeometry();
  SimDisk disk(&sim, geometry_copy, MakeTestSeekProfile(),
               DiskNoiseModel::Prototype(), /*seed=*/77, /*phase=*/555.0);
  ASSERT_TRUE(disk.mutable_layout().AddBadSector(120));
  ASSERT_TRUE(disk.mutable_layout().AddBadSector(164));
  ASSERT_TRUE(disk.mutable_layout().AddBadSector(301));
  SyncDisk sync(&sim, &disk);
  CalibrationOptions options;
  options.extract_seek_profile = false;
  const CalibrationResult cal = CalibrateDisk(&sim, &disk, options);
  const double phase = SpindlePhaseFromLattice(
      disk.layout(), 0, cal.lattice_phase_us, cal.rotation_us);
  DiskProber prober(&sync, disk.num_sectors(), geometry_copy.num_heads,
                    cal.rotation_us, phase);
  // Expected layout: a pristine one (no remaps), as Probe() would recover.
  DiskGeometry pristine_geo = MakeTestGeometry();
  DiskLayout pristine(&pristine_geo);
  const std::vector<uint64_t> found =
      prober.FindRemappedSectors(pristine, 100, 250);
  EXPECT_EQ(found, (std::vector<uint64_t>{120, 164, 301}));
}

}  // namespace
}  // namespace mimdraid
