// Firmware command-queueing tests (InternalQueueDisk).
#include <gtest/gtest.h>

#include <vector>

#include "src/disk/queued_disk.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

class QueuedDiskTest : public ::testing::Test {
 protected:
  QueuedDiskTest()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), 1, 0.0) {}

  Simulator sim_;
  SimDisk disk_;
};

TEST_F(QueuedDiskTest, AcceptsManyAndCompletesAll) {
  InternalQueueDisk drive(&disk_, FirmwarePolicy::kSatf);
  Rng rng(3);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    drive.Submit(DiskOp::kRead, BlockAddr(rng.UniformU64(disk_.num_sectors() - 4)),
                 4,
                 [&](const DiskOpResult&) { ++done; });
  }
  sim_.Run();
  EXPECT_EQ(done, 50);
  EXPECT_TRUE(drive.Idle());
}

TEST_F(QueuedDiskTest, FcfsPreservesOrder) {
  InternalQueueDisk drive(&disk_, FirmwarePolicy::kFcfs);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    drive.Submit(DiskOp::kRead, BlockAddr(static_cast<uint64_t>(i) * 500), 4,
                 [&order, i](const DiskOpResult&) { order.push_back(i); });
  }
  sim_.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
  EXPECT_EQ(drive.reorderings(), 0u);
}

TEST_F(QueuedDiskTest, SatfReordersForPosition) {
  InternalQueueDisk drive(&disk_, FirmwarePolicy::kSatf);
  Rng rng(7);
  int done = 0;
  for (int i = 0; i < 60; ++i) {
    drive.Submit(DiskOp::kRead, BlockAddr(rng.UniformU64(disk_.num_sectors() - 4)),
                 4,
                 [&](const DiskOpResult&) { ++done; });
  }
  sim_.Run();
  EXPECT_EQ(done, 60);
  EXPECT_GT(drive.reorderings(), 0u);
}

TEST_F(QueuedDiskTest, SatfFasterThanFcfsUnderLoad) {
  // Same request set, both policies, closed queue of 16: firmware SATF must
  // finish sooner.
  SimTime fcfs_end;
  SimTime satf_end;
  for (FirmwarePolicy policy : {FirmwarePolicy::kFcfs, FirmwarePolicy::kSatf}) {
    Simulator sim;
    SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
                 DiskNoiseModel::None(), 1, 0.0);
    InternalQueueDisk drive(&disk, policy);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      drive.Submit(DiskOp::kRead, BlockAddr(rng.UniformU64(disk.num_sectors() - 4)),
                   4,
                   [](const DiskOpResult&) {});
    }
    sim.Run();
    (policy == FirmwarePolicy::kFcfs ? fcfs_end : satf_end) = sim.Now();
  }
  EXPECT_LT(satf_end, fcfs_end);
}

TEST_F(QueuedDiskTest, TagLimitBoundsFirmwareScan) {
  // With a tag limit of 1, SATF degenerates to FCFS ordering.
  InternalQueueDisk drive(&disk_, FirmwarePolicy::kSatf, /*queue_depth=*/1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    drive.Submit(DiskOp::kRead, BlockAddr(static_cast<uint64_t>(9 - i) * 700), 4,
                 [&order, i](const DiskOpResult&) { order.push_back(i); });
  }
  sim_.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace mimdraid
