// RAID-5 layout and controller tests: parity rotation, RMW accounting,
// degraded service, and rebuild.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/raid5/raid5_controller.h"
#include "src/raid5/raid5_layout.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

TEST(Raid5Layout, CapacityIsNMinusOneDisks) {
  Raid5Layout layout(5, 16, 1600);  // 100 rows
  EXPECT_EQ(layout.num_rows(), 100u);
  EXPECT_EQ(layout.data_capacity_sectors(), 100ull * 4 * 16);
}

TEST(Raid5Layout, ParityRotatesLeftSymmetric) {
  Raid5Layout layout(4, 16, 160);
  std::set<uint32_t> seen;
  for (uint32_t row = 0; row < 4; ++row) {
    seen.insert(layout.ParityDiskOf(row));
  }
  EXPECT_EQ(seen.size(), 4u);  // parity visits every disk
  EXPECT_EQ(layout.ParityDiskOf(0), 3u);
  EXPECT_EQ(layout.ParityDiskOf(1), 2u);
}

TEST(Raid5Layout, DataDisksSkipParity) {
  Raid5Layout layout(4, 16, 160);
  for (uint32_t row = 0; row < 8; ++row) {
    const uint32_t parity = layout.ParityDiskOf(row);
    std::set<uint32_t> data;
    for (uint32_t i = 0; i < 3; ++i) {
      const uint32_t d = layout.DataDiskOf(row, i);
      EXPECT_NE(d, parity);
      data.insert(d);
    }
    EXPECT_EQ(data.size(), 3u);
  }
}

TEST(Raid5Layout, MapPartitionsRequests) {
  Raid5Layout layout(4, 16, 160);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(60));
    const uint64_t lba =
        rng.UniformU64(layout.data_capacity_sectors() - sectors);
    uint64_t cur = lba;
    for (const Raid5Fragment& f : layout.Map(lba, sectors)) {
      EXPECT_EQ(f.logical_lba, cur);
      EXPECT_NE(f.data_disk, f.parity_disk);
      EXPECT_EQ(f.parity_disk, layout.ParityDiskOf(f.row));
      EXPECT_LE(f.sectors, 16u);
      cur += f.sectors;
    }
    EXPECT_EQ(cur, lba + sectors);
  }
}

TEST(Raid5Layout, DistinctLogicalSectorsDistinctPhysical) {
  Raid5Layout layout(4, 16, 160);
  std::set<std::pair<uint32_t, uint64_t>> owned;
  for (uint64_t lba = 0; lba < layout.data_capacity_sectors(); ++lba) {
    const auto frags = layout.Map(lba, 1);
    ASSERT_EQ(frags.size(), 1u);
    EXPECT_TRUE(
        owned.insert({frags[0].data_disk, frags[0].disk_lba}).second);
  }
}

struct Rig {
  explicit Rig(uint32_t disks = 4) {
    for (uint32_t i = 0; i < disks; ++i) {
      sim_disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 17 + i, i * 500.0));
      preds.push_back(
          std::make_unique<OraclePredictor>(sim_disks.back().get(), 0.0));
      dptr.push_back(sim_disks.back().get());
      pptr.push_back(preds.back().get());
    }
    layout = std::make_unique<Raid5Layout>(disks, 16, 2000);
    controller = std::make_unique<Raid5Controller>(&sim, dptr, pptr,
                                                   layout.get(),
                                                   Raid5ControllerOptions{});
  }

  SimTime Do(DiskOp op, uint64_t lba, uint32_t sectors) {
    SimTime completion(-1);
    controller->Submit(op, lba, sectors, [&](const IoResult& r) { completion = r.completion_us; });
    while (completion < SimTime(0)) {
      EXPECT_TRUE(sim.Step());
    }
    return completion;
  }

  void Drain() {
    while (!controller->Idle() && sim.Step()) {
    }
  }

  Simulator sim;
  std::vector<std::unique_ptr<SimDisk>> sim_disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  std::unique_ptr<Raid5Layout> layout;
  std::unique_ptr<Raid5Controller> controller;
};

TEST(Raid5Controller, ReadTouchesOnlyDataDisk) {
  Rig rig;
  rig.Do(DiskOp::kRead, 0, 8);
  uint64_t total_ops = 0;
  for (auto& d : rig.sim_disks) {
    total_ops += d->ops_completed();
  }
  EXPECT_EQ(total_ops, 1u);
  EXPECT_EQ(rig.controller->stats().reads_completed, 1u);
}

TEST(Raid5Controller, SmallWriteIsFourAccesses) {
  Rig rig;
  rig.Do(DiskOp::kWrite, 0, 8);
  rig.Drain();
  uint64_t total_ops = 0;
  for (auto& d : rig.sim_disks) {
    total_ops += d->ops_completed();
  }
  // Read old data + read old parity + write data + write parity.
  EXPECT_EQ(total_ops, 4u);
  EXPECT_EQ(rig.controller->stats().rmw_writes, 1u);
}

TEST(Raid5Controller, SmallWriteSlowerThanStripeWrite) {
  Rig rig;
  const SimTime write_done = rig.Do(DiskOp::kWrite, 160, 8);
  Rig rig2;
  const SimTime read_done = rig2.Do(DiskOp::kRead, 160, 8);
  // The RMW write costs roughly a full extra rotation beyond a read.
  EXPECT_GT(write_done - SimTime(0), (read_done + SimDuration(3000)).SinceStart());
}

TEST(Raid5Controller, DegradedReadFansOutToPeers) {
  Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  rig.controller->FailDisk(SlotId(frag.data_disk));
  rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(rig.controller->stats().degraded_reads, 1u);
  uint64_t total_ops = 0;
  for (auto& d : rig.sim_disks) {
    total_ops += d->ops_completed();
  }
  EXPECT_EQ(total_ops, 3u);  // N-1 surviving members
}

TEST(Raid5Controller, DegradedWriteToLostParityJustWritesData) {
  Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  rig.controller->FailDisk(SlotId(frag.parity_disk));
  rig.Do(DiskOp::kWrite, 0, 8);
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().degraded_writes, 1u);
  uint64_t total_ops = 0;
  for (auto& d : rig.sim_disks) {
    total_ops += d->ops_completed();
  }
  EXPECT_EQ(total_ops, 1u);
}

TEST(Raid5Controller, DegradedWriteToLostDataReconstructs) {
  Rig rig;
  const auto frag = rig.layout->Map(0, 8)[0];
  rig.controller->FailDisk(SlotId(frag.data_disk));
  rig.Do(DiskOp::kWrite, 0, 8);
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().degraded_writes, 1u);
  // Reads the other 2 data units, writes parity.
  uint64_t total_ops = 0;
  for (auto& d : rig.sim_disks) {
    total_ops += d->ops_completed();
  }
  EXPECT_EQ(total_ops, 3u);
}

TEST(Raid5Controller, RebuildRestoresRedundancy) {
  Rig rig;
  rig.controller->FailDisk(SlotId(2));
  SimTime rebuilt_at(-1);
  rig.controller->Rebuild(SlotId(2), [&](const IoResult& r) { rebuilt_at = r.completion_us; });
  while (rebuilt_at < SimTime(0)) {
    ASSERT_TRUE(rig.sim.Step());
  }
  EXPECT_EQ(rig.controller->stats().rebuilt_rows, rig.layout->num_rows());
  EXPECT_FALSE(rig.controller->IsFailed(SlotId(2)));
  // Reads are normal again.
  const auto frag = rig.layout->Map(0, 8)[0];
  (void)frag;
  rig.Do(DiskOp::kRead, 0, 8);
  EXPECT_EQ(rig.controller->stats().degraded_reads, 0u);
}

TEST(Raid5Controller, TrafficDuringRebuildStaysCorrect) {
  Rig rig;
  rig.controller->FailDisk(SlotId(1));
  SimTime rebuilt_at(-1);
  rig.controller->Rebuild(SlotId(1), [&](const IoResult& r) { rebuilt_at = r.completion_us; });
  // Issue reads across the array while the rebuild streams.
  Rng rng(9);
  int done = 0;
  constexpr int kOps = 60;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t lba =
        rng.UniformU64(rig.layout->data_capacity_sectors() - 8);
    rig.controller->Submit(DiskOp::kRead, lba, 8, [&](const IoResult&) { ++done; });
  }
  while (done < kOps || rebuilt_at < SimTime(0)) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_EQ(rig.controller->stats().reads_completed,
            static_cast<uint64_t>(kOps));
}

TEST(Raid5Controller, RandomMixAllCompletes) {
  Rig rig(5);
  Rng rng(21);
  int done = 0;
  constexpr int kOps = 250;
  for (int i = 0; i < kOps; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba =
        rng.UniformU64(rig.layout->data_capacity_sectors() - sectors);
    rig.controller->Submit(rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite,
                           lba, sectors, [&](const IoResult&) { ++done; });
  }
  while (done < kOps) {
    ASSERT_TRUE(rig.sim.Step());
  }
  rig.Drain();
  EXPECT_TRUE(rig.controller->Idle());
  EXPECT_EQ(rig.controller->stats().reads_completed +
                rig.controller->stats().writes_completed,
            static_cast<uint64_t>(kOps));
}

}  // namespace
}  // namespace mimdraid
