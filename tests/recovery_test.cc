// Crash recovery of delayed-write propagation via the NVRAM metadata table
// (Section 3.4): the table's snapshot is sufficient to finish every pending
// replica propagation after a crash.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/array/array_layout.h"
#include "src/array/controller.h"
#include "src/array/nvram_table.h"
#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

struct World {
  World(int ds, int dr, int dm, size_t table_limit = 10'000) {
    aspect.ds = ds;
    aspect.dr = dr;
    aspect.dm = dm;
    const int d = aspect.TotalDisks();
    for (int i = 0; i < d; ++i) {
      disks.push_back(std::make_unique<SimDisk>(
          &sim, MakeTestGeometry(), MakeTestSeekProfile(),
          DiskNoiseModel::None(), 91 + i, i * 333.0));
      preds.push_back(std::make_unique<OraclePredictor>(disks.back().get(), 0.0));
      dptr.push_back(disks.back().get());
      pptr.push_back(preds.back().get());
    }
    layout = std::make_unique<ArrayLayout>(&disks[0]->layout(), aspect, 16,
                                           3000);
    ArrayControllerOptions copts;
    copts.delayed_table_limit = table_limit;
    controller =
        std::make_unique<ArrayController>(&sim, dptr, pptr, layout.get(), copts);
  }

  Simulator sim;
  ArrayAspect aspect;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<AccessPredictor>> preds;
  std::vector<SimDisk*> dptr;
  std::vector<AccessPredictor*> pptr;
  std::unique_ptr<ArrayLayout> layout;
  std::unique_ptr<ArrayController> controller;
};

TEST(NvramTableUnit, PutEraseOwnership) {
  NvramTable t;
  t.Put(NvramEntry{1, 100, 8}, 7);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_TRUE(t.OwnerOf(1, 100).has_value());
  EXPECT_EQ(*t.OwnerOf(1, 100), 7u);
  // A different owner cannot erase it.
  EXPECT_FALSE(t.EraseIfOwner(1, 100, 8));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.EraseIfOwner(1, 100, 7));
  EXPECT_TRUE(t.empty());
}

TEST(NvramTableUnit, PutReplacesOwner) {
  NvramTable t;
  t.Put(NvramEntry{0, 5, 4}, 1);
  t.Put(NvramEntry{0, 5, 4}, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.OwnerOf(0, 5), 2u);
}

TEST(NvramTableUnit, SnapshotListsAllEntries) {
  NvramTable t;
  t.Put(NvramEntry{0, 5, 4}, 1);
  t.Put(NvramEntry{1, 9, 8}, 2);
  const auto snap = t.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
}

TEST(Recovery, PendingPropagationsSurviveReboot) {
  World w(1, 2, 1);
  // Issue writes and "crash" as soon as the first copies land (the delayed
  // queue is still full).
  Rng rng(3);
  int done = 0;
  constexpr int kWrites = 12;
  for (int i = 0; i < kWrites; ++i) {
    w.controller->Submit(DiskOp::kWrite, static_cast<uint64_t>(i) * 32, 8,
                         [&](const IoResult&) { ++done; });
  }
  while (done < kWrites) {
    ASSERT_TRUE(w.sim.Step());
  }
  const size_t pending_before = w.controller->DelayedBacklog();
  ASSERT_GT(pending_before, 0u);
  const std::vector<NvramEntry> snapshot = w.controller->nvram().Snapshot();
  ASSERT_EQ(snapshot.size(), pending_before);

  // Crash: everything volatile is lost — only the NVRAM snapshot survives.
  // Boot a fresh machine and recover.
  World fresh(1, 2, 1);
  EXPECT_EQ(fresh.controller->DelayedBacklog(), 0u);
  fresh.controller->RestorePropagations(snapshot);
  EXPECT_EQ(fresh.controller->DelayedBacklog(), pending_before);

  // Recovery completes in the background.
  while (!fresh.controller->Idle() && fresh.sim.Step()) {
  }
  EXPECT_EQ(fresh.controller->DelayedBacklog(), 0u);
  EXPECT_EQ(fresh.controller->stats().delayed_writes_completed,
            pending_before);
}

TEST(Recovery, RecoveredArrayServesReadsConsistently) {
  World w(1, 2, 1);
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    w.controller->Submit(DiskOp::kWrite, static_cast<uint64_t>(i) * 16, 8,
                         [&](const IoResult&) { ++done; });
  }
  while (done < 6) {
    ASSERT_TRUE(w.sim.Step());
  }
  const auto snapshot = w.controller->nvram().Snapshot();
  World fresh(1, 2, 1);
  fresh.controller->RestorePropagations(snapshot);
  // Reads issued immediately after recovery must avoid the still-stale
  // replicas and complete.
  int reads = 0;
  for (int i = 0; i < 6; ++i) {
    fresh.controller->Submit(DiskOp::kRead, static_cast<uint64_t>(i) * 16, 8,
                             [&](const IoResult&) { ++reads; });
  }
  while (reads < 6) {
    ASSERT_TRUE(fresh.sim.Step());
  }
  while (!fresh.controller->Idle() && fresh.sim.Step()) {
  }
  EXPECT_EQ(fresh.controller->stats().reads_completed, 6u);
  EXPECT_EQ(fresh.controller->DelayedBacklog(), 0u);
}

TEST(Recovery, SnapshotBoundedByTableLimit) {
  World w(1, 2, 1, /*table_limit=*/4);
  int done = 0;
  constexpr int kWrites = 30;
  for (int i = 0; i < kWrites; ++i) {
    w.controller->Submit(DiskOp::kWrite, static_cast<uint64_t>(i) * 32, 8,
                         [&](const IoResult&) { ++done; });
  }
  while (done < kWrites) {
    ASSERT_TRUE(w.sim.Step());
  }
  // The force-out machinery keeps the table (and therefore the recovery
  // work) bounded near the limit.
  EXPECT_LE(w.controller->nvram().Snapshot().size(), 8u);
  while (!w.controller->Idle() && w.sim.Step()) {
  }
}

TEST(Recovery, EmptySnapshotIsNoOp) {
  World w(1, 2, 1);
  w.controller->RestorePropagations({});
  EXPECT_TRUE(w.controller->Idle());
  EXPECT_EQ(w.controller->DelayedBacklog(), 0u);
}

TEST(Recovery, MirrorConfigurationRecovers) {
  World w(1, 1, 2);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    w.controller->Submit(DiskOp::kWrite, static_cast<uint64_t>(i) * 32, 8,
                         [&](const IoResult&) { ++done; });
  }
  while (done < 8) {
    ASSERT_TRUE(w.sim.Step());
  }
  const auto snapshot = w.controller->nvram().Snapshot();
  const size_t pending = snapshot.size();
  World fresh(1, 1, 2);
  fresh.controller->RestorePropagations(snapshot);
  while (!fresh.controller->Idle() && fresh.sim.Step()) {
  }
  EXPECT_EQ(fresh.controller->stats().delayed_writes_completed, pending);
}

}  // namespace
}  // namespace mimdraid
