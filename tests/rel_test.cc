// Fleet-lifetime reliability subsystem (src/rel) and its estimators
// (src/stats/estimate.h): hazard draws match their distributions, the
// event-driven fleet simulator matches the Markov closed form in
// exponential mode, trials are deterministic and O(reliability events),
// and the rebuild calibration scales the embedded measurement linearly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/rel/fleet_sim.h"
#include "src/rel/hazard.h"
#include "src/rel/mttdl.h"
#include "src/rel/rebuild_calib.h"
#include "src/sim/fault_injector.h"
#include "src/stats/estimate.h"

namespace mimdraid {
namespace {

// ---------------------------------------------------------------------------
// Estimators.
// ---------------------------------------------------------------------------

TEST(Estimate, NormalQuantileMatchesTables) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(NormalQuantile(0.99), 2.326348, 1e-4);
}

TEST(Estimate, ChiSquareQuantileMatchesTables) {
  // Wilson–Hilferty is good to a fraction of a percent at these dof.
  EXPECT_NEAR(ChiSquareQuantile(0.95, 10.0), 18.307, 0.08);
  EXPECT_NEAR(ChiSquareQuantile(0.05, 10.0), 3.940, 0.08);
  EXPECT_NEAR(ChiSquareQuantile(0.975, 40.0), 59.342, 0.15);
  EXPECT_NEAR(ChiSquareQuantile(0.025, 40.0), 24.433, 0.15);
}

TEST(Estimate, ExponentialMeanIntervalBehaves) {
  // 100 events in 1e6 hours: point estimate 1e4, CI strictly brackets it.
  const IntervalEstimate e = ExponentialMeanEstimate(1.0e6, 100, 0.95);
  EXPECT_DOUBLE_EQ(e.point, 1.0e4);
  EXPECT_LT(e.lo, e.point);
  EXPECT_GT(e.hi, e.point);
  // More events, same rate: the interval tightens.
  const IntervalEstimate tight = ExponentialMeanEstimate(1.0e7, 1000, 0.95);
  EXPECT_GT(tight.lo / tight.point, e.lo / e.point);
  EXPECT_LT(tight.hi / tight.point, e.hi / e.point);
}

TEST(Estimate, ZeroEventsGivesFiniteLowerBoundOnly) {
  const IntervalEstimate e = ExponentialMeanEstimate(5.0e5, 0, 0.95);
  EXPECT_TRUE(std::isinf(e.point));
  EXPECT_TRUE(std::isinf(e.hi));
  EXPECT_GT(e.lo, 0.0);
  EXPECT_TRUE(std::isfinite(e.lo));
  const IntervalEstimate rate = EventsPerYearEstimate(5.0e5, 0, 0.95);
  EXPECT_EQ(rate.point, 0.0);
  EXPECT_EQ(rate.lo, 0.0);
  EXPECT_GT(rate.hi, 0.0);
}

// ---------------------------------------------------------------------------
// Hazard draws.
// ---------------------------------------------------------------------------

double MeanLifetimeDraw(const DiskLifetimeOptions& lifetime, int n) {
  FaultInjectorOptions fo;
  fo.seed = 1234;
  fo.lifetime = lifetime;
  FaultInjector injector(fo);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += injector.DrawLifetimeHours(0);
  }
  return sum / n;
}

TEST(Hazard, WeibullDrawMeanMatchesClosedForm) {
  DiskLifetimeOptions lifetime;
  lifetime.hazard = LifetimeHazard::kWeibull;
  lifetime.weibull_shape = 2.0;  // wear-out regime
  lifetime.weibull_scale_hours = 1000.0;
  const double expected = rel::WeibullMeanHours(2.0, 1000.0);
  EXPECT_NEAR(expected, 886.2269, 1e-3);  // 1000 * Gamma(1.5)
  EXPECT_NEAR(MeanLifetimeDraw(lifetime, 40'000), expected,
              0.02 * expected);
}

TEST(Hazard, WeibullShapeOneDegeneratesToExponential) {
  DiskLifetimeOptions weibull;
  weibull.hazard = LifetimeHazard::kWeibull;
  weibull.weibull_shape = 1.0;
  weibull.weibull_scale_hours = 500.0;
  DiskLifetimeOptions expo;
  expo.hazard = LifetimeHazard::kExponential;
  expo.mttf_hours = 500.0;
  EXPECT_NEAR(MeanLifetimeDraw(weibull, 40'000), 500.0, 15.0);
  EXPECT_NEAR(MeanLifetimeDraw(expo, 40'000), 500.0, 15.0);
}

TEST(Hazard, InfantMortalityShapeSkewsEarly) {
  // shape < 1: decreasing hazard — the median sits far below the mean.
  DiskLifetimeOptions lifetime;
  lifetime.hazard = LifetimeHazard::kWeibull;
  lifetime.weibull_shape = 0.5;
  lifetime.weibull_scale_hours = 1000.0;
  FaultInjectorOptions fo;
  fo.lifetime = lifetime;
  FaultInjector injector(fo);
  int below_mean = 0;
  const double mean = rel::WeibullMeanHours(0.5, 1000.0);  // 2000 h
  for (int i = 0; i < 10'000; ++i) {
    if (injector.DrawLifetimeHours(0) < mean) {
      ++below_mean;
    }
  }
  EXPECT_GT(below_mean, 7'500);
}

TEST(Hazard, LseGapDrawsAreExponentialWithConfiguredRate) {
  FaultInjectorOptions fo;
  fo.seed = 77;
  fo.lifetime.hazard = LifetimeHazard::kExponential;
  fo.lifetime.lse_rate_per_hour = 1.0e-3;
  FaultInjector injector(fo);
  double sum = 0.0;
  for (int i = 0; i < 40'000; ++i) {
    sum += injector.DrawLseGapHours(3);
  }
  EXPECT_NEAR(sum / 40'000, 1000.0, 25.0);
  EXPECT_EQ(injector.counters().lse_gap_draws, 40'000u);
}

TEST(Hazard, ClosedFormMatchesTextbookMirroredPair) {
  // (3 lambda + mu) / (2 lambda^2) with MTTF 1000 h, MTTR 10 h.
  EXPECT_NEAR(rel::ClosedFormMttdlSingleFault(2, 1000.0, 10.0), 51'500.0,
              1e-6);
}

// ---------------------------------------------------------------------------
// Fleet simulator.
// ---------------------------------------------------------------------------

rel::FleetOptions MirrorPairCrossCheckOptions() {
  rel::FleetOptions fleet;
  fleet.disks = 2;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 1000.0;
  fleet.rebuild_model = rel::RebuildTimeModel::kExponential;
  fleet.rebuild_hours = 10.0;
  fleet.horizon_hours = 200'000.0;
  return fleet;
}

TEST(FleetSim, ExponentialModeMatchesClosedFormMttdl) {
  // In exponential-lifetime + exponential-rebuild mode the simulator
  // realizes exactly the Markov chain behind the closed form; the Monte
  // Carlo 95% CI must bracket it.
  rel::MonteCarloOptions mc;
  mc.fleet = MirrorPairCrossCheckOptions();
  mc.trials = 80;
  mc.base_seed = 4242;
  mc.jobs = 1;
  const rel::MttdlEstimate est = rel::RunFleetMonteCarlo(mc);
  const double closed = rel::ClosedFormMttdlSingleFault(2, 1000.0, 10.0);
  EXPECT_GT(est.totals.data_loss_events, 100u);
  EXPECT_LE(est.mttdl_hours.lo, closed);
  EXPECT_GE(est.mttdl_hours.hi, closed);
  // Sanity on the point estimate: within a third of the truth.
  EXPECT_NEAR(est.mttdl_hours.point, closed, closed / 3.0);
}

TEST(FleetSim, DeterministicForPinnedSeedsAndAnyJobCount) {
  rel::MonteCarloOptions mc;
  mc.fleet = MirrorPairCrossCheckOptions();
  mc.fleet.lifetime.lse_rate_per_hour = 1.0e-3;
  mc.fleet.scrub = rel::ScrubPolicy::kFixedPeriod;
  mc.fleet.scrub_period_hours = 168.0;
  mc.trials = 40;
  mc.base_seed = 99;
  mc.jobs = 1;
  const rel::MttdlEstimate serial = rel::RunFleetMonteCarlo(mc);
  mc.jobs = 4;
  const rel::MttdlEstimate parallel = rel::RunFleetMonteCarlo(mc);
  EXPECT_EQ(serial.totals.data_loss_events, parallel.totals.data_loss_events);
  EXPECT_EQ(serial.totals.sector_loss_events,
            parallel.totals.sector_loss_events);
  EXPECT_EQ(serial.totals.disk_failures, parallel.totals.disk_failures);
  EXPECT_EQ(serial.totals.rebuilds_completed,
            parallel.totals.rebuilds_completed);
  EXPECT_EQ(serial.totals.lse_arrivals, parallel.totals.lse_arrivals);
  EXPECT_EQ(serial.totals.events_processed, parallel.totals.events_processed);
  EXPECT_DOUBLE_EQ(serial.mttdl_hours.point, parallel.mttdl_hours.point);
}

TEST(FleetSim, QuietYearCostsOnlyReliabilityEvents) {
  // A fleet whose hazards essentially never fire inside the horizon: a
  // simulated year must cost a handful of queue operations, not anything
  // proportional to simulated time.
  rel::FleetOptions fleet;
  fleet.disks = 8;
  fleet.fault_tolerance = 2;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 1.0e12;
  fleet.horizon_hours = kHoursPerYear;
  fleet.scrub = rel::ScrubPolicy::kFixedPeriod;
  fleet.scrub_period_hours = 168.0;  // weekly: ~52 sweeps, the only events
  fleet.seed = 7;
  rel::FleetSim sim(fleet);
  const rel::FleetTrialResult r = sim.Run();
  EXPECT_EQ(r.disk_failures, 0u);
  EXPECT_EQ(r.data_loss_events, 0u);
  EXPECT_GE(r.scrub_sweeps, 52u);
  EXPECT_LE(r.events_processed, 60u);
}

TEST(FleetSim, RenewalContinuesPastWholeArrayLoss) {
  // Failure-dense regime: several losses inside one trial proves the
  // renewal reset re-arms the array instead of wedging or ending early.
  rel::FleetOptions fleet;
  fleet.disks = 2;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 50.0;
  fleet.rebuild_model = rel::RebuildTimeModel::kFixed;
  fleet.rebuild_hours = 25.0;
  fleet.horizon_hours = 20'000.0;
  fleet.seed = 11;
  rel::FleetSim sim(fleet);
  const rel::FleetTrialResult r = sim.Run();
  EXPECT_GT(r.data_loss_events, 5u);
  EXPECT_GT(r.disk_failures, r.data_loss_events);
  EXPECT_DOUBLE_EQ(r.observed_hours, 20'000.0);
}

TEST(FleetSim, ScrubClearsLatentErrorsAndSuppressesSectorLoss) {
  rel::FleetOptions fleet;
  fleet.disks = 6;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 10'000.0;
  fleet.lifetime.lse_rate_per_hour = 1.0e-3;
  fleet.rebuild_hours = 10.0;
  fleet.horizon_hours = 10.0 * kHoursPerYear;

  rel::MonteCarloOptions mc;
  mc.fleet = fleet;
  mc.trials = 60;
  mc.base_seed = 314;
  mc.jobs = 1;
  mc.fleet.scrub = rel::ScrubPolicy::kOff;
  const rel::MttdlEstimate unscrubbed = rel::RunFleetMonteCarlo(mc);
  mc.fleet.scrub = rel::ScrubPolicy::kFixedPeriod;
  mc.fleet.scrub_period_hours = 168.0;
  const rel::MttdlEstimate scrubbed = rel::RunFleetMonteCarlo(mc);

  EXPECT_EQ(unscrubbed.totals.lse_scrub_cleared, 0u);
  EXPECT_GT(scrubbed.totals.lse_scrub_cleared, 0u);
  EXPECT_GT(scrubbed.totals.scrub_sweeps, 0u);
  // Scrubbing clears LSEs before rebuilds need the sectors: the sector-loss
  // class collapses while whole-array losses stay put (same failure draws).
  EXPECT_LT(scrubbed.totals.sector_loss_events * 4,
            unscrubbed.totals.sector_loss_events);
  EXPECT_EQ(scrubbed.totals.disk_failures, unscrubbed.totals.disk_failures);
  EXPECT_DOUBLE_EQ(scrubbed.totals.last_sweep_coverage, 1.0);
}

TEST(FleetSim, StaggeredPolicySweepsPerDisk) {
  rel::FleetOptions fleet;
  fleet.disks = 4;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 1.0e12;  // quiet: isolate the scrub machinery
  fleet.lifetime.lse_rate_per_hour = 1.0e-2;
  fleet.horizon_hours = 1680.0;  // ten periods
  fleet.scrub = rel::ScrubPolicy::kStaggered;
  fleet.scrub_period_hours = 168.0;
  fleet.seed = 5;
  rel::FleetSim sim(fleet);
  const rel::FleetTrialResult r = sim.Run();
  // Four per-disk sweeps per period, ten periods (the last batch lands on
  // the horizon boundary).
  EXPECT_GE(r.scrub_sweeps, 36u);
  EXPECT_GT(r.lse_scrub_cleared, 0u);
  EXPECT_DOUBLE_EQ(r.last_sweep_coverage, 1.0);
}

TEST(FleetSim, UtilizationGatingStretchesThePeriod) {
  rel::FleetOptions fleet;
  fleet.disks = 4;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 1.0e12;
  fleet.horizon_hours = 16'800.0;
  fleet.scrub_period_hours = 168.0;
  fleet.seed = 5;

  fleet.scrub = rel::ScrubPolicy::kFixedPeriod;
  rel::FleetSim fixed(fleet);
  const uint64_t fixed_sweeps = fixed.Run().scrub_sweeps;

  fleet.scrub = rel::ScrubPolicy::kUtilizationGated;
  fleet.utilization = 0.5;  // busy half the time: half the sweep cadence
  rel::FleetSim gated(fleet);
  const uint64_t gated_sweeps = gated.Run().scrub_sweeps;

  EXPECT_EQ(fixed_sweeps, 100u);
  EXPECT_EQ(gated_sweeps, 50u);
}

TEST(FleetSim, CoverageDropsWhileASlotIsDown) {
  // Long rebuilds + frequent sweeps: some sweep lands inside a failure
  // window and reports partial coverage.
  rel::FleetOptions fleet;
  fleet.disks = 4;
  fleet.fault_tolerance = 1;
  fleet.lifetime.hazard = LifetimeHazard::kExponential;
  fleet.lifetime.mttf_hours = 300.0;
  fleet.rebuild_hours = 100.0;
  fleet.horizon_hours = 1000.0;
  fleet.scrub = rel::ScrubPolicy::kFixedPeriod;
  fleet.scrub_period_hours = 10.0;
  fleet.seed = 3;
  rel::FleetSim sim(fleet);
  const rel::FleetTrialResult r = sim.Run();
  EXPECT_GT(r.disk_failures, 0u);
  EXPECT_GT(r.scrub_sweeps, 0u);
  EXPECT_LT(r.last_sweep_coverage, 1.0 + 1e-9);
}

// ---------------------------------------------------------------------------
// Rebuild calibration.
// ---------------------------------------------------------------------------

TEST(RebuildCalib, MeasuresTheEmbeddedRebuildAndScalesLinearly) {
  const rel::RebuildCalibration calib =
      rel::CalibrateRebuild(ArrayBackendKind::kMirror, 5);
  EXPECT_GT(calib.measured_sectors, 0u);
  EXPECT_GT(calib.measured_duration_us, 0.0);
  // Scaling is exactly linear in capacity.
  const double one = calib.HoursForCapacity(calib.measured_sectors);
  const double ten = calib.HoursForCapacity(calib.measured_sectors * 10);
  EXPECT_NEAR(ten, 10.0 * one, 1e-9 * ten);
  // The measured run itself converts back to its own duration.
  EXPECT_NEAR(one, calib.measured_duration_us / 3.6e9, 1e-12);
}

TEST(RebuildCalib, DeterministicPerSeedAndDistinctPerBackend) {
  const rel::RebuildCalibration a =
      rel::CalibrateRebuild(ArrayBackendKind::kRaid5, 5);
  const rel::RebuildCalibration b =
      rel::CalibrateRebuild(ArrayBackendKind::kRaid5, 5);
  EXPECT_DOUBLE_EQ(a.measured_duration_us, b.measured_duration_us);
  EXPECT_EQ(a.measured_sectors, b.measured_sectors);
  const rel::RebuildCalibration mirror =
      rel::CalibrateRebuild(ArrayBackendKind::kMirror, 5);
  // Different mechanisms (copy vs. parity reconstruction) measure
  // differently.
  EXPECT_NE(mirror.measured_duration_us, a.measured_duration_us);
}

TEST(RebuildCalib, ErasureBackendCalibratesViaDecodeRebuild) {
  const rel::RebuildCalibration calib =
      rel::CalibrateRebuild(ArrayBackendKind::kErasure, 5);
  EXPECT_GT(calib.measured_sectors, 0u);
  EXPECT_GT(calib.measured_duration_us, 0.0);
  // The 2+2 rig decodes from two survivors per row; it is not the RAID-5
  // 3+1 measurement.
  const rel::RebuildCalibration raid5 =
      rel::CalibrateRebuild(ArrayBackendKind::kRaid5, 5);
  EXPECT_NE(calib.measured_duration_us, raid5.measured_duration_us);
}

}  // namespace
}  // namespace mimdraid
