// Reliability-path regressions on the real array stack: scrub lifecycle
// (StopScrub drains mid-flight work cleanly, StartScrub resumes the sweep),
// per-sweep coverage accounting, spare exhaustion (degraded service forever,
// with controller recovery stats reconciling against injector counters), and
// the ScrubGating policy split — kIdleGated yields to delayed-propagation
// backlog, kAlways scrubs through it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

constexpr uint64_t kDataset = 2400;
constexpr uint64_t kStepBudget = 30'000'000;

struct RigConfig {
  FaultInjectorOptions fault;
  uint32_t hot_spares = 0;
  SimDuration scrub_interval_us;
  ScrubGating scrub_gating = ScrubGating::kIdleGated;
  bool foreground_write_propagation = false;
  uint64_t seed = 5;
};

// Same small four-drive rig the conformance suite uses: the mirror runs a
// 2x1x2 replica layout, RAID-5 a 4-disk rotating-parity group.
std::unique_ptr<MimdRaid> MakeArray(ArrayBackendKind kind,
                                    const RigConfig& rig) {
  MimdRaidOptions options;
  options.backend = kind;
  if (kind == ArrayBackendKind::kMirror) {
    options.aspect.ds = 2;
    options.aspect.dr = 1;
    options.aspect.dm = 2;
  } else {
    options.aspect.ds = 4;
    options.aspect.dr = 1;
    options.aspect.dm = 1;
  }
  options.scheduler = SchedulerKind::kSatf;
  options.dataset_sectors = kDataset;
  options.stripe_unit_sectors = 16;
  options.geometry = MakeTestGeometry();
  options.profile = MakeTestSeekProfile();
  options.seed = rig.seed;
  options.enable_fault_injection = true;
  options.fault = rig.fault;
  options.fault.seed = rig.seed;
  options.hot_spares = rig.hot_spares;
  options.scrub_interval_us = rig.scrub_interval_us;
  options.scrub_gating = rig.scrub_gating;
  options.foreground_write_propagation = rig.foreground_write_propagation;
  return std::make_unique<MimdRaid>(options);
}

// Submits `ops` random operations and pumps until every one completed
// exactly once; counts kOk completions.
int RunMix(MimdRaid* array, int ops, uint64_t seed, double read_frac) {
  Rng rng(seed);
  int done = 0;
  int ok = 0;
  for (int i = 0; i < ops; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(24));
    const uint64_t lba =
        rng.UniformU64(array->backend().dataset_sectors() - sectors);
    const DiskOp op =
        rng.Bernoulli(read_frac) ? DiskOp::kRead : DiskOp::kWrite;
    array->backend().Submit(op, lba, sectors, [&](const IoResult& r) {
      ++done;
      if (r.status == IoStatus::kOk) ++ok;
    });
  }
  uint64_t steps = 0;
  while (done < ops) {
    EXPECT_TRUE(array->sim().Step()) << "simulator ran dry";
    if (++steps >= kStepBudget) {
      ADD_FAILURE() << "completions lost";
      break;
    }
  }
  return ok;
}

// Steps until the backend is fully idle (scrubber still armed unless the
// caller stopped it).
void DrainTo(MimdRaid* array, bool stop_scrub) {
  if (stop_scrub) array->backend().StopScrub();
  uint64_t steps = 0;
  while ((!array->backend().Idle() || array->backend().RebuildInProgress()) &&
         array->sim().Step()) {
    ASSERT_LT(++steps, kStepBudget) << "drain wedged";
  }
}

// Pumps until the completed-sweep counter reaches `target` (scrubber must be
// running).
void PumpUntilSweeps(MimdRaid* array, uint64_t target) {
  uint64_t steps = 0;
  while (array->backend().fault_stats().scrub_sweeps_completed < target) {
    ASSERT_TRUE(array->sim().Step()) << "simulator ran dry before sweep "
                                     << target;
    ASSERT_LT(++steps, kStepBudget) << "sweep " << target << " never finished";
  }
}

class ReliabilityPath : public ::testing::TestWithParam<ArrayBackendKind> {};

// ---------------------------------------------------------------------------
// Scrub lifecycle: StopScrub with a sweep mid-flight drains cleanly (the
// in-flight scrub reads complete, AuditQuiescent holds), and StartScrub
// resumes sweeping afterwards.
// ---------------------------------------------------------------------------

TEST_P(ReliabilityPath, StopScrubMidFlightDrainsAndStartScrubResumes) {
  RigConfig rig;
  rig.scrub_interval_us = SimDuration(5'000);
  auto array = MakeArray(GetParam(), rig);

  // Let the sweeper get airborne: pump until scrub work is actually in
  // flight (the backend reports non-idle with no foreground ops queued).
  uint64_t steps = 0;
  while (array->backend().Idle() ||
         array->backend().fault_stats().scrub_reads == 0) {
    ASSERT_TRUE(array->sim().Step());
    ASSERT_LT(++steps, kStepBudget) << "scrubber never started";
  }
  ASSERT_FALSE(array->backend().Idle());

  // Stop mid-flight. The timer disarms but the issued reads drain normally;
  // quiescence must be clean, not wedged or leaky.
  array->backend().StopScrub();
  DrainTo(array.get(), /*stop_scrub=*/false);
  ASSERT_TRUE(array->backend().Idle());
  array->backend().AuditQuiescent();
  const uint64_t reads_at_stop = array->backend().fault_stats().scrub_reads;
  EXPECT_GT(reads_at_stop, 0u);

  // Stopped means stopped: simulated time passes, no new scrub reads.
  array->sim().RunUntil(array->sim().Now() + SimDuration(200'000));
  EXPECT_EQ(array->backend().fault_stats().scrub_reads, reads_at_stop);

  // StartScrub re-arms and the sweep completes from where it left off.
  array->backend().StartScrub();
  PumpUntilSweeps(array.get(), 1);
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  EXPECT_GT(fs.scrub_reads, reads_at_stop);
  EXPECT_GE(fs.scrub_sweeps_completed, 1u);
  EXPECT_DOUBLE_EQ(fs.scrub_last_sweep_coverage, 1.0);
  DrainTo(array.get(), /*stop_scrub=*/true);
  array->backend().AuditQuiescent();
}

// ---------------------------------------------------------------------------
// Coverage accounting: a healthy sweep covers everything; a sweep run with a
// failed slot reports partial coverage, and recovery restores 1.0.
// ---------------------------------------------------------------------------

TEST_P(ReliabilityPath, SweepCoverageDropsWithFailedSlotAndRecovers) {
  RigConfig rig;
  rig.scrub_interval_us = SimDuration(5'000);
  auto array = MakeArray(GetParam(), rig);

  PumpUntilSweeps(array.get(), 1);
  EXPECT_DOUBLE_EQ(array->backend().fault_stats().scrub_last_sweep_coverage,
                   1.0);
  const uint64_t healthy_sectors =
      array->backend().fault_stats().scrub_sectors_read;
  EXPECT_GT(healthy_sectors, 0u);

  // Lose a disk (FailDisk requires the slot quiescent, so stop the sweeper
  // first); the next completed sweep skips its media and says so.
  DrainTo(array.get(), /*stop_scrub=*/true);
  ASSERT_TRUE(array->backend().FailDisk(SlotId(0)));
  array->backend().StartScrub();
  const uint64_t sweeps_before =
      array->backend().fault_stats().scrub_sweeps_completed;
  PumpUntilSweeps(array.get(), sweeps_before + 2);
  const double degraded =
      array->backend().fault_stats().scrub_last_sweep_coverage;
  EXPECT_LT(degraded, 1.0) << "sweep over a failed slot claimed full coverage";
  EXPECT_GT(degraded, 0.0);

  // Rebuild the slot (quiesce the scrubber first — Rebuild requires the
  // drives idle); coverage returns to full on a later sweep.
  DrainTo(array.get(), /*stop_scrub=*/true);
  bool rebuilt = false;
  array->backend().Rebuild(SlotId(0),
                           [&](const IoResult&) { rebuilt = true; });
  uint64_t steps = 0;
  while (!rebuilt) {
    ASSERT_TRUE(array->sim().Step());
    ASSERT_LT(++steps, kStepBudget) << "rebuild wedged";
  }
  array->backend().StartScrub();
  const uint64_t sweeps_after_rebuild =
      array->backend().fault_stats().scrub_sweeps_completed;
  PumpUntilSweeps(array.get(), sweeps_after_rebuild + 2);
  EXPECT_DOUBLE_EQ(array->backend().fault_stats().scrub_last_sweep_coverage,
                   1.0);
  DrainTo(array.get(), /*stop_scrub=*/true);
  array->backend().AuditQuiescent();
}

// ---------------------------------------------------------------------------
// Spare exhaustion: once the pool is empty a further tolerated failure just
// leaves the array degraded — reads keep serving indefinitely — and the
// controller's recovery counters reconcile against the injector's.
// ---------------------------------------------------------------------------

TEST_P(ReliabilityPath, SpareExhaustionServesDegradedIndefinitely) {
  RigConfig rig;
  rig.hot_spares = 1;
  auto array = MakeArray(GetParam(), rig);
  ASSERT_EQ(array->backend().spares_available(), 1u);

  // First fail-stop: detected on access, the one spare is promoted into the
  // slot and auto-rebuilt.
  array->fault_injector()->FailStop(0);
  EXPECT_EQ(RunMix(array.get(), 150, 53, 0.0), 150);
  DrainTo(array.get(), /*stop_scrub=*/true);
  EXPECT_EQ(array->backend().spares_available(), 0u);
  EXPECT_FALSE(array->backend().IsFailed(SlotId(0)));
  ASSERT_EQ(array->backend().fault_stats().spares_promoted, 1u);
  ASSERT_EQ(array->backend().fault_stats().spare_rebuilds_completed, 1u);

  // Second fail-stop on the same slot: pool exhausted, so the slot stays
  // failed and the array serves degraded — wave after wave, no data loss.
  array->fault_injector()->FailStop(0);
  for (int wave = 0; wave < 3; ++wave) {
    EXPECT_EQ(RunMix(array.get(), 100, 100 + wave, 0.8), 100)
        << "degraded wave " << wave << " lost operations";
    DrainTo(array.get(), /*stop_scrub=*/true);
  }
  EXPECT_TRUE(array->backend().IsFailed(SlotId(0)))
      << "no spare left: the slot must stay failed";
  EXPECT_EQ(array->backend().spares_available(), 0u);
  EXPECT_FALSE(array->backend().RebuildInProgress());

  // Reconciliation: everything the injector rejected was seen and absorbed
  // by the recovery machinery (redirected reads / degraded reconstruction),
  // never surfaced and never dropped.
  const FaultRecoveryStats& fs = array->backend().fault_stats();
  const FaultInjectorCounters& fic = array->fault_injector()->counters();
  EXPECT_GT(fic.failstop_rejections, 0u);
  EXPECT_GT(fs.disk_failed_seen, 0u);
  EXPECT_LE(fs.disk_failed_seen, fic.failstop_rejections)
      << "controller saw more dead-disk completions than the injector issued";
  EXPECT_EQ(fs.spares_promoted, 1u) << "exhausted pool must not re-promote";
  EXPECT_EQ(fs.unrecoverable_completions, 0u)
      << "single tolerated failure surfaced as data loss";
  if (GetParam() == ArrayBackendKind::kMirror) {
    EXPECT_GT(fs.failovers, 0u);
  } else {
    EXPECT_GT(fs.reconstructions, 0u);
  }
  array->backend().AuditQuiescent();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ReliabilityPath,
    ::testing::Values(ArrayBackendKind::kMirror, ArrayBackendKind::kRaid5),
    [](const ::testing::TestParamInfo<ArrayBackendKind>& param) {
      return param.param == ArrayBackendKind::kMirror ? "Mirror" : "Raid5";
    });

// ---------------------------------------------------------------------------
// ScrubGating: the mirror's delayed-propagation backlog keeps the engine
// non-quiet after writes complete (replicas still propagating from NVRAM).
// kIdleGated defers scrubbing until the backlog drains; kAlways scrubs
// through it. The observable split is *when* the first scrub read lands
// relative to the backlog draining.
// ---------------------------------------------------------------------------

struct GatingTimes {
  SimTime first_scrub_read;
  SimTime backlog_drained;
};

GatingTimes MeasureGating(ScrubGating gating) {
  RigConfig rig;
  rig.scrub_interval_us = SimDuration(2'000);
  rig.scrub_gating = gating;
  auto array = MakeArray(ArrayBackendKind::kMirror, rig);

  // A burst of distinct-LBA writes: each completes into NVRAM after its
  // first replica lands, leaving the remaining replicas to propagate in the
  // background — a long-lived backlog of delayed work.
  int done = 0;
  constexpr int kWrites = 150;
  for (int i = 0; i < kWrites; ++i) {
    const uint64_t lba = (i * 16) % (kDataset - 8);
    array->backend().Submit(DiskOp::kWrite, lba, 8,
                            [&](const IoResult&) { ++done; });
  }
  uint64_t steps = 0;
  while (done < kWrites) {
    EXPECT_TRUE(array->sim().Step());
    if (++steps >= kStepBudget) {
      ADD_FAILURE() << "writes never completed";
      break;
    }
  }
  EXPECT_GT(array->controller().DelayedBacklog(), 0u)
      << "no delayed backlog: the gating scenario collapsed";

  // Step until both milestones are recorded: the first scrub read and the
  // backlog reaching zero.
  GatingTimes t;
  bool scrubbed = false;
  bool drained = false;
  steps = 0;
  while (!(scrubbed && drained)) {
    if (!scrubbed && array->backend().fault_stats().scrub_reads > 0) {
      scrubbed = true;
      t.first_scrub_read = array->sim().Now();
    }
    if (!drained && array->controller().DelayedBacklog() == 0) {
      drained = true;
      t.backlog_drained = array->sim().Now();
    }
    if (scrubbed && drained) break;
    EXPECT_TRUE(array->sim().Step()) << "simulator ran dry mid-measurement";
    if (++steps >= kStepBudget) {
      ADD_FAILURE() << "milestones never reached (scrubbed=" << scrubbed
                    << " drained=" << drained << ")";
      break;
    }
  }
  array->backend().StopScrub();
  return t;
}

TEST(ScrubGatingPolicy, IdleGatedYieldsToDelayedBacklogAlwaysDoesNot) {
  const GatingTimes gated = MeasureGating(ScrubGating::kIdleGated);
  const GatingTimes always = MeasureGating(ScrubGating::kAlways);
  // kIdleGated: LiveDrivesQuiet() is false while any delayed-propagation
  // queue is non-empty, so the first scrub read waits for the drain.
  EXPECT_GE(gated.first_scrub_read, gated.backlog_drained)
      << "idle-gated scrub ran while delayed writes were still propagating";
  // kAlways: the tick fires on schedule and scrubs straight through the
  // propagation backlog.
  EXPECT_LT(always.first_scrub_read, always.backlog_drained)
      << "kAlways scrub failed to run under delayed-propagation backlog";
}

}  // namespace
}  // namespace mimdraid
