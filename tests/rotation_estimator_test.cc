#include <gtest/gtest.h>

#include <cmath>

#include "src/calib/calibration.h"
#include "src/calib/rotation_estimator.h"
#include "src/calib/sync_disk.h"
#include "src/disk/sim_disk.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

TEST(RotationEstimator, ExactLatticeRecoverd) {
  RotationEstimator est(6000.0);
  // Perfect lattice with R = 6003.5, phase = 1234.
  for (int i = 0; i < 20; ++i) {
    est.AddObservation(static_cast<SimTime>(1234.0 + i * 7 * 6003.5));
  }
  ASSERT_TRUE(est.Ready());
  EXPECT_NEAR(est.rotation_us(), 6003.5, 0.01);
  // Phase recovered modulo R.
  const double phase_err =
      std::fmod(est.phase_us() - 1234.0, est.rotation_us());
  EXPECT_LT(std::min(std::abs(phase_err),
                     est.rotation_us() - std::abs(phase_err)),
            1.0);
  EXPECT_LT(est.ResidualRmsUs(), 1.0);
}

TEST(RotationEstimator, NoisyLatticeConverges) {
  RotationEstimator est(6000.0);
  Rng rng(5);
  const double true_r = 5999.2;
  double t = 500.0;
  for (int i = 0; i < 40; ++i) {
    const int k = 3 + static_cast<int>(rng.UniformU64(5));
    t += k * true_r;
    est.AddObservation(SimTime(static_cast<int64_t>(t + rng.Normal(0.0, 15.0))));
  }
  EXPECT_NEAR(est.rotation_us(), true_r, 0.5);
  EXPECT_LT(est.ResidualRmsUs(), 60.0);
}

TEST(RotationEstimator, RejectsAbsurdFit) {
  RotationEstimator est(6000.0);
  est.AddObservation(SimTime(0));
  est.AddObservation(SimTime(6000));
  est.AddObservation(SimTime(12000));
  EXPECT_NEAR(est.rotation_us(), 6000.0, 1.0);
}

TEST(RotationEstimator, TrimKeepsRecentWindow) {
  RotationEstimator est(6000.0);
  for (int i = 0; i < 100; ++i) {
    est.AddObservation(SimTime(static_cast<int64_t>(i * 6001.0)));
  }
  est.TrimTo(10);
  EXPECT_EQ(est.num_observations(), 10u);
  EXPECT_NEAR(est.rotation_us(), 6001.0, 0.5);
}

TEST(RotationEstimator, NotReadyWithTwoObservations) {
  RotationEstimator est(6000.0);
  est.AddObservation(SimTime(100));
  est.AddObservation(SimTime(6100));
  EXPECT_FALSE(est.Ready());
}

// End-to-end: calibrate against a simulated drive whose true rotation
// deviates from nominal, with realistic noise. The paper reports phase
// prediction errors around 1% of a rotation; the estimator should do better
// than that here.
TEST(RotationEstimatorEndToEnd, CalibratesSimulatedDrive) {
  Simulator sim;
  const double true_rotation = 6000.0 * (1.0 + 25e-6);  // +25 ppm
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::Prototype(), /*seed=*/11,
               /*spindle_phase_us=*/2345.0, true_rotation);
  CalibrationOptions options;
  options.extract_seek_profile = false;
  const CalibrationResult cal = CalibrateDisk(&sim, &disk, options);
  EXPECT_NEAR(cal.rotation_us, true_rotation, 0.05);
  // Residuals should be on the order of the timestamp jitter.
  EXPECT_LT(cal.residual_rms_us, 60.0);

  // The recovered spindle phase must predict sector passage times: compare
  // against the drive's true timing model at a probe point.
  const double spindle_phase = SpindlePhaseFromLattice(
      disk.layout(), options.reference_lba, cal.lattice_phase_us,
      cal.rotation_us);
  const DiskTimingModel& truth = disk.DebugTimingModel();
  const double t_probe = static_cast<double>(sim.Now().us()) + 12345.0;
  DiskTimingModel estimate(&disk.layout(), MakeTestSeekProfile(),
                           spindle_phase, cal.rotation_us);
  // Angle estimates agree within ~1% of a rotation, modulo the constant
  // post-overhead bias which is part of the lattice by design.
  double diff = estimate.SpindleAngleAt(t_probe) - truth.SpindleAngleAt(t_probe);
  diff -= std::round(diff);
  const DiskNoiseModel noise = DiskNoiseModel::Prototype();
  const double bias = noise.post_overhead_mean_us / 6000.0;
  EXPECT_LT(std::abs(std::abs(diff) - bias), 0.01);
}

}  // namespace
}  // namespace mimdraid
