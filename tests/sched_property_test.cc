// Property tests for every scheduler: validity of picks, no starvation, and
// policy-defining optimality properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

class SchedulerProperty : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  SchedulerProperty()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), 1, 0.0),
        predictor_(&disk_, 0.0),
        rng_(42) {
    ctx_.now = 0;
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  QueuedRequest RandomRequest(uint64_t id, int candidates) {
    QueuedRequest r;
    r.id = id;
    r.op = rng_.Bernoulli(0.7) ? DiskOp::kRead : DiskOp::kWrite;
    r.sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(16));
    for (int c = 0; c < candidates; ++c) {
      r.candidate_lbas.push_back(
          rng_.UniformU64(disk_.layout().num_data_sectors() - r.sectors));
    }
    r.arrival_us = static_cast<SimTime>(rng_.UniformU64(100000));
    return r;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
  Rng rng_;
};

TEST_P(SchedulerProperty, PickIsAlwaysValid) {
  auto sched = MakeScheduler(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<QueuedRequest> queue;
    const int n = 1 + static_cast<int>(rng_.UniformU64(12));
    for (int i = 0; i < n; ++i) {
      queue.push_back(RandomRequest(trial * 100 + i,
                                    1 + static_cast<int>(rng_.UniformU64(3))));
    }
    ctx_.now = trial * 5000;
    const SchedulerPick pick = sched->Pick(queue, ctx_);
    ASSERT_LT(pick.queue_index, queue.size());
    const auto& cands = queue[pick.queue_index].candidate_lbas;
    EXPECT_NE(std::find(cands.begin(), cands.end(), pick.lba), cands.end());
  }
}

TEST_P(SchedulerProperty, DrainsEveryRequestExactlyOnce) {
  auto sched = MakeScheduler(GetParam());
  std::vector<QueuedRequest> queue;
  std::set<uint64_t> ids;
  for (int i = 0; i < 30; ++i) {
    queue.push_back(RandomRequest(i + 1, 2));
    ids.insert(i + 1);
  }
  SimTime now = 0;
  while (!queue.empty()) {
    ctx_.now = now;
    const SchedulerPick pick = sched->Pick(queue, ctx_);
    ASSERT_LT(pick.queue_index, queue.size());
    EXPECT_EQ(ids.erase(queue[pick.queue_index].id), 1u);
    queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
    now += 3000;
  }
  EXPECT_TRUE(ids.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kSstf,
                      SchedulerKind::kLook, SchedulerKind::kClook,
                      SchedulerKind::kSatf, SchedulerKind::kAsatf,
                      SchedulerKind::kRlook, SchedulerKind::kRsatf),
    [](const auto& suite_info) { return SchedulerKindName(suite_info.param); });

// Policy-specific optimality: SATF's pick minimizes the predicted effective
// service time over primary candidates; RSATF over all candidates.
TEST(SchedulerOptimality, SatfMinimizesOverPrimaries) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), 1, 0.0);
  OraclePredictor predictor(&disk, 0.0);
  ScheduleContext ctx{12345, &predictor, &disk.layout()};
  Rng rng(7);
  auto satf = MakeScheduler(SchedulerKind::kSatf);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<QueuedRequest> queue;
    for (int i = 0; i < 8; ++i) {
      QueuedRequest r;
      r.id = i + 1;
      r.op = DiskOp::kRead;
      r.sectors = 4;
      r.candidate_lbas = {rng.UniformU64(disk.num_sectors() - 4)};
      queue.push_back(std::move(r));
    }
    ctx.now = trial * 7777;
    const SchedulerPick pick = satf->Pick(queue, ctx);
    double best = 1e18;
    for (const QueuedRequest& r : queue) {
      const AccessPlan plan =
          predictor.Predict(ctx.now, r.candidate_lbas[0], r.sectors, false);
      best = std::min(best, predictor.EffectiveServiceUs(plan));
    }
    const AccessPlan chosen = predictor.Predict(
        ctx.now, pick.lba, queue[pick.queue_index].sectors, false);
    EXPECT_DOUBLE_EQ(predictor.EffectiveServiceUs(chosen), best);
  }
}

// RLOOK's request choice matches plain LOOK's; only the replica differs.
TEST(SchedulerOptimality, RlookFollowsLookRequestOrder) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), 1, 0.0);
  OraclePredictor predictor(&disk, 0.0);
  ScheduleContext ctx{0, &predictor, &disk.layout()};
  Rng rng(9);
  auto rlook = MakeScheduler(SchedulerKind::kRlook);
  auto look = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> q1;
  std::vector<QueuedRequest> q2;
  for (int i = 0; i < 20; ++i) {
    QueuedRequest r;
    r.id = i + 1;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    const uint64_t primary = rng.UniformU64(disk.num_sectors() - 1);
    r.candidate_lbas = {primary};
    q2.push_back(r);  // LOOK sees only the primary
    // RLOOK also sees a same-cylinder alternate.
    const Chs chs = disk.layout().ToChs(primary);
    const uint32_t other_head = (chs.head + 1) % 4;
    const uint64_t alt =
        disk.layout().ToLba(Chs{chs.cylinder, other_head, chs.sector});
    if (alt != kInvalidLba) {
      r.candidate_lbas.push_back(alt);
    }
    q1.push_back(std::move(r));
  }
  while (!q1.empty()) {
    const SchedulerPick p1 = rlook->Pick(q1, ctx);
    const SchedulerPick p2 = look->Pick(q2, ctx);
    EXPECT_EQ(q1[p1.queue_index].id, q2[p2.queue_index].id);
    q1.erase(q1.begin() + static_cast<ptrdiff_t>(p1.queue_index));
    q2.erase(q2.begin() + static_cast<ptrdiff_t>(p2.queue_index));
  }
}

}  // namespace
}  // namespace mimdraid
