// Property tests for every scheduler: validity of picks, no starvation, and
// policy-defining optimality properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

class SchedulerProperty : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  SchedulerProperty()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), 1, 0.0),
        predictor_(&disk_, 0.0),
        rng_(42) {
    ctx_.now = SimTime(0);
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  QueuedRequest RandomRequest(uint64_t id, int candidates) {
    QueuedRequest r;
    r.id = id;
    r.op = rng_.Bernoulli(0.7) ? DiskOp::kRead : DiskOp::kWrite;
    r.sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(16));
    for (int c = 0; c < candidates; ++c) {
      r.candidate_lbas.push_back(
          BlockAddr(rng_.UniformU64(disk_.layout().num_data_sectors() - r.sectors)));
    }
    r.arrival_us = SimTime(static_cast<int64_t>(rng_.UniformU64(100000)));
    return r;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
  Rng rng_;
};

TEST_P(SchedulerProperty, PickIsAlwaysValid) {
  auto sched = MakeScheduler(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<QueuedRequest> queue;
    const int n = 1 + static_cast<int>(rng_.UniformU64(12));
    for (int i = 0; i < n; ++i) {
      queue.push_back(RandomRequest(trial * 100 + i,
                                    1 + static_cast<int>(rng_.UniformU64(3))));
    }
    ctx_.now = SimTime(trial * 5000);
    const SchedulerPick pick = sched->Pick(queue, ctx_);
    ASSERT_LT(pick.queue_index, queue.size());
    const auto& cands = queue[pick.queue_index].candidate_lbas;
    EXPECT_NE(std::find(cands.begin(), cands.end(), pick.lba), cands.end());
  }
}

TEST_P(SchedulerProperty, DrainsEveryRequestExactlyOnce) {
  auto sched = MakeScheduler(GetParam());
  std::vector<QueuedRequest> queue;
  std::set<uint64_t> ids;
  for (int i = 0; i < 30; ++i) {
    queue.push_back(RandomRequest(i + 1, 2));
    ids.insert(i + 1);
  }
  SimTime now;  // default-constructed: t=0
  while (!queue.empty()) {
    ctx_.now = now;
    const SchedulerPick pick = sched->Pick(queue, ctx_);
    ASSERT_LT(pick.queue_index, queue.size());
    EXPECT_EQ(ids.erase(queue[pick.queue_index].id), 1u);
    queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
    now += SimDuration(3000);
  }
  EXPECT_TRUE(ids.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kSstf,
                      SchedulerKind::kLook, SchedulerKind::kClook,
                      SchedulerKind::kSatf, SchedulerKind::kAsatf,
                      SchedulerKind::kRlook, SchedulerKind::kRsatf),
    [](const auto& suite_info) { return SchedulerKindName(suite_info.param); });

// Policy-specific optimality: SATF's pick minimizes the predicted effective
// service time over primary candidates; RSATF over all candidates.
TEST(SchedulerOptimality, SatfMinimizesOverPrimaries) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), 1, 0.0);
  OraclePredictor predictor(&disk, 0.0);
  ScheduleContext ctx{SimTime(12345), &predictor, &disk.layout()};
  Rng rng(7);
  auto satf = MakeScheduler(SchedulerKind::kSatf);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<QueuedRequest> queue;
    for (int i = 0; i < 8; ++i) {
      QueuedRequest r;
      r.id = i + 1;
      r.op = DiskOp::kRead;
      r.sectors = 4;
      r.candidate_lbas = {BlockAddr(rng.UniformU64(disk.num_sectors() - 4))};
      queue.push_back(std::move(r));
    }
    ctx.now = SimTime(trial * 7777);
    const SchedulerPick pick = satf->Pick(queue, ctx);
    double best = 1e18;
    for (const QueuedRequest& r : queue) {
      const AccessPlan plan =
          predictor.Predict(ctx.now, r.candidate_lbas[0], r.sectors, false);
      best = std::min(best, predictor.EffectiveServiceUs(plan));
    }
    const AccessPlan chosen = predictor.Predict(
        ctx.now, pick.lba, queue[pick.queue_index].sectors, false);
    EXPECT_DOUBLE_EQ(predictor.EffectiveServiceUs(chosen), best);
  }
}

// RLOOK's request choice matches plain LOOK's; only the replica differs.
TEST(SchedulerOptimality, RlookFollowsLookRequestOrder) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), 1, 0.0);
  OraclePredictor predictor(&disk, 0.0);
  ScheduleContext ctx{SimTime(0), &predictor, &disk.layout()};
  Rng rng(9);
  auto rlook = MakeScheduler(SchedulerKind::kRlook);
  auto look = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> q1;
  std::vector<QueuedRequest> q2;
  for (int i = 0; i < 20; ++i) {
    QueuedRequest r;
    r.id = i + 1;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    const uint64_t primary = rng.UniformU64(disk.num_sectors() - 1);
    r.candidate_lbas = {BlockAddr(primary)};
    q2.push_back(r);  // LOOK sees only the primary
    // RLOOK also sees a same-cylinder alternate.
    const Chs chs = disk.layout().ToChs(primary);
    const uint32_t other_head = (chs.head + 1) % 4;
    const uint64_t alt =
        disk.layout().ToLba(Chs{chs.cylinder, other_head, chs.sector});
    if (alt != kInvalidLba) {
      r.candidate_lbas.push_back(BlockAddr(alt));
    }
    q1.push_back(std::move(r));
  }
  while (!q1.empty()) {
    const SchedulerPick p1 = rlook->Pick(q1, ctx);
    const SchedulerPick p2 = look->Pick(q2, ctx);
    EXPECT_EQ(q1[p1.queue_index].id, q2[p2.queue_index].id);
    q1.erase(q1.begin() + static_cast<ptrdiff_t>(p1.queue_index));
    q2.erase(q2.begin() + static_cast<ptrdiff_t>(p2.queue_index));
  }
}

// --- LOOK edge cases: direction reversal and same-cylinder tie-breaks. ---

class LookEdgeCases : public ::testing::Test {
 protected:
  LookEdgeCases()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), 1, 0.0),
        predictor_(&disk_, 0.0) {
    ctx_.now = SimTime(0);
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  QueuedRequest AtCylinder(uint64_t id, uint32_t cylinder, int64_t arrival) {
    const uint64_t lba = disk_.layout().ToLba(Chs{cylinder, 0, 0});
    EXPECT_NE(lba, kInvalidLba) << "cylinder " << cylinder;
    QueuedRequest r;
    r.id = id;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    r.candidate_lbas = {BlockAddr(lba)};
    r.arrival_us = SimTime(arrival);
    return r;
  }

  std::vector<uint64_t> DrainIds(Scheduler& sched,
                                 std::vector<QueuedRequest> queue) {
    std::vector<uint64_t> order;
    while (!queue.empty()) {
      const SchedulerPick pick = sched.Pick(queue, ctx_);
      order.push_back(queue[pick.queue_index].id);
      queue.erase(queue.begin() + static_cast<ptrdiff_t>(pick.queue_index));
    }
    return order;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
};

TEST_F(LookEdgeCases, ReversesOnlyWhenAheadExhausted) {
  // Upward from cylinder 0: 10, 30, 50; then nothing ahead, so the sweep
  // reverses and services the remaining lower cylinders in descending order.
  auto sched = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> queue;
  queue.push_back(AtCylinder(1, 50, 0));
  queue.push_back(AtCylinder(2, 10, 0));
  queue.push_back(AtCylinder(3, 30, 0));
  queue.push_back(AtCylinder(4, 20, 0));
  queue.push_back(AtCylinder(5, 40, 0));
  // First pass picks 10, 20, 30, 40, 50 — no reversal needed at all.
  EXPECT_EQ(DrainIds(*sched, queue), (std::vector<uint64_t>{2, 4, 3, 5, 1}));

  // A fresh elevator that services 50 first must reverse to reach the rest:
  // descending 30, then 10.
  auto sched2 = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> high_first;
  high_first.push_back(AtCylinder(1, 50, 0));
  const SchedulerPick first = sched2->Pick(high_first, ctx_);
  EXPECT_EQ(high_first[first.queue_index].id, 1u);  // arm now at 50, going up
  high_first.clear();
  high_first.push_back(AtCylinder(2, 10, 0));
  high_first.push_back(AtCylinder(3, 30, 0));
  EXPECT_EQ(DrainIds(*sched2, high_first), (std::vector<uint64_t>{3, 2}));
}

TEST_F(LookEdgeCases, SameCylinderTieBreaksByEarliestArrival) {
  auto sched = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> queue;
  queue.push_back(AtCylinder(1, 20, /*arrival=*/500));
  queue.push_back(AtCylinder(2, 20, /*arrival=*/100));
  queue.push_back(AtCylinder(3, 20, /*arrival=*/300));
  EXPECT_EQ(DrainIds(*sched, queue), (std::vector<uint64_t>{2, 3, 1}));

  // The tie-break is by arrival time, not queue position: reversing the
  // submission order must not change the service order.
  auto sched2 = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> reversed;
  reversed.push_back(AtCylinder(3, 20, /*arrival=*/300));
  reversed.push_back(AtCylinder(2, 20, /*arrival=*/100));
  reversed.push_back(AtCylinder(1, 20, /*arrival=*/500));
  EXPECT_EQ(DrainIds(*sched2, reversed), (std::vector<uint64_t>{2, 3, 1}));
}

TEST_F(LookEdgeCases, CurrentCylinderStaysEligible) {
  // Service cylinder 40 on the way up, then requests at 40 and below:
  // eligibility is non-strict (cyl >= current going up), so the second
  // request at 40 is serviced with no arm movement and no reversal; only
  // then does the sweep turn around for 15.
  auto sched = MakeScheduler(SchedulerKind::kLook);
  std::vector<QueuedRequest> queue;
  queue.push_back(AtCylinder(1, 40, 0));
  const SchedulerPick first = sched->Pick(queue, ctx_);
  EXPECT_EQ(queue[first.queue_index].id, 1u);
  queue.clear();
  queue.push_back(AtCylinder(2, 15, 0));
  queue.push_back(AtCylinder(3, 40, 0));
  EXPECT_EQ(DrainIds(*sched, queue), (std::vector<uint64_t>{3, 2}));
}

// --- RSATF max_scan: the scan window is a strict queue prefix. ---

class RsatfMaxScan : public ::testing::Test {
 protected:
  RsatfMaxScan()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), 1, 0.0),
        predictor_(&disk_, 0.0),
        rng_(77) {
    ctx_.now = SimTime(0);
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  QueuedRequest RandomRequest(uint64_t id, int candidates) {
    QueuedRequest r;
    r.id = id;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    for (int c = 0; c < candidates; ++c) {
      r.candidate_lbas.push_back(BlockAddr(rng_.UniformU64(disk_.num_sectors() - 1)));
    }
    r.arrival_us = SimTime(static_cast<int64_t>(rng_.UniformU64(1000)));
    return r;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
  Rng rng_;
};

TEST_F(RsatfMaxScan, WindowedPickEqualsFullPickOnPrefix) {
  // RSATF with max_scan=k on the whole queue behaves exactly like unbounded
  // RSATF restricted to the first k entries.
  constexpr size_t kWindow = 4;
  auto windowed = MakeScheduler(SchedulerKind::kRsatf, kWindow);
  auto unbounded = MakeScheduler(SchedulerKind::kRsatf);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<QueuedRequest> queue;
    for (int i = 0; i < 12; ++i) {
      queue.push_back(RandomRequest(trial * 100 + i, 1 + trial % 3));
    }
    ctx_.now = SimTime(trial * 4321);
    const SchedulerPick w = windowed->Pick(queue, ctx_);
    const std::vector<QueuedRequest> prefix(queue.begin(),
                                            queue.begin() + kWindow);
    const SchedulerPick u = unbounded->Pick(prefix, ctx_);
    EXPECT_EQ(w.queue_index, u.queue_index) << "trial " << trial;
    EXPECT_EQ(w.lba, u.lba) << "trial " << trial;
    EXPECT_DOUBLE_EQ(w.predicted_service_us, u.predicted_service_us);
  }
}

TEST_F(RsatfMaxScan, CheaperCandidateBeyondWindowIsIgnored) {
  // Sort single-candidate requests most-expensive-first, so the globally
  // cheapest request sits at the back of the queue. Unbounded RSATF takes it;
  // max_scan must confine the pick to the prefix window ahead of it.
  constexpr size_t kWindow = 4;
  auto cost = [&](const QueuedRequest& r) {
    const AccessPlan plan =
        predictor_.Predict(ctx_.now, r.candidate_lbas[0], r.sectors, false);
    return predictor_.EffectiveServiceUs(plan);
  };
  std::vector<QueuedRequest> queue;
  for (uint64_t i = 0; i < 10; ++i) {
    queue.push_back(RandomRequest(i + 1, 1));
  }
  std::sort(queue.begin(), queue.end(),
            [&](const QueuedRequest& a, const QueuedRequest& b) {
              return cost(a) > cost(b);
            });
  ASSERT_LT(cost(queue.back()), cost(queue[kWindow - 1]));

  auto unbounded = MakeScheduler(SchedulerKind::kRsatf);
  EXPECT_EQ(unbounded->Pick(queue, ctx_).queue_index, queue.size() - 1);
  auto windowed = MakeScheduler(SchedulerKind::kRsatf, kWindow);
  EXPECT_LT(windowed->Pick(queue, ctx_).queue_index, kWindow);
}

TEST_F(RsatfMaxScan, ZeroAndOversizeWindowsScanTheWholeQueue) {
  auto zero = MakeScheduler(SchedulerKind::kRsatf, 0);
  auto oversize = MakeScheduler(SchedulerKind::kRsatf, 1000);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<QueuedRequest> queue;
    for (int i = 0; i < 10; ++i) {
      queue.push_back(RandomRequest(trial * 50 + i, 2));
    }
    ctx_.now = SimTime(trial * 999);
    const SchedulerPick a = zero->Pick(queue, ctx_);
    const SchedulerPick b = oversize->Pick(queue, ctx_);
    EXPECT_EQ(a.queue_index, b.queue_index);
    EXPECT_EQ(a.lba, b.lba);
  }
}

}  // namespace
}  // namespace mimdraid
