#include <gtest/gtest.h>

#include "src/calib/predictor.h"
#include "src/disk/sim_disk.h"
#include "src/sched/basic_schedulers.h"
#include "src/sched/positional_schedulers.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  SchedTest()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0),
        predictor_(&disk_, 0.0) {
    ctx_.now = SimTime(0);
    ctx_.predictor = &predictor_;
    ctx_.layout = &disk_.layout();
  }

  // Queue entry whose primary candidate lies on the given cylinder.
  QueuedRequest ReqAtCylinder(uint32_t cylinder, SimTime arrival = SimTime(0)) {
    QueuedRequest r;
    r.id = next_id_++;
    r.op = DiskOp::kRead;
    r.sectors = 1;
    uint64_t lba = kInvalidLba;
    for (uint32_t h = 0; h < 4 && lba == kInvalidLba; ++h) {
      lba = disk_.layout().ToLba(Chs{cylinder, h, 0});
    }
    EXPECT_NE(lba, kInvalidLba);
    r.candidate_lbas = {BlockAddr(lba)};
    r.arrival_us = arrival;
    return r;
  }

  Simulator sim_;
  SimDisk disk_;
  OraclePredictor predictor_;
  ScheduleContext ctx_;
  uint64_t next_id_ = 1;
};

TEST_F(SchedTest, FcfsPicksEarliestArrival) {
  FcfsScheduler sched;
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(10, SimTime(300)));
  q.push_back(ReqAtCylinder(20, SimTime(100)));
  q.push_back(ReqAtCylinder(30, SimTime(200)));
  EXPECT_EQ(sched.Pick(q, ctx_).queue_index, 1u);
}

TEST_F(SchedTest, SstfPicksNearestCylinder) {
  // Head starts at the first data cylinder (0).
  SstfScheduler sched;
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(40));
  q.push_back(ReqAtCylinder(3));
  q.push_back(ReqAtCylinder(25));
  EXPECT_EQ(sched.Pick(q, ctx_).queue_index, 1u);
}

TEST_F(SchedTest, SstfConsidersAllReplicas) {
  SstfScheduler sched;
  std::vector<QueuedRequest> q;
  QueuedRequest multi = ReqAtCylinder(50);
  multi.candidate_lbas.push_back(BlockAddr(disk_.layout().ToLba(Chs{1, 0, 0})));
  q.push_back(ReqAtCylinder(10));
  q.push_back(multi);
  const SchedulerPick pick = sched.Pick(q, ctx_);
  EXPECT_EQ(pick.queue_index, 1u);  // cylinder-1 replica wins
  EXPECT_EQ(disk_.layout().ToChs(pick.lba.value()).cylinder, 1u);
}

TEST_F(SchedTest, LookSweepsUpThenDown) {
  LookScheduler sched;
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(30));
  q.push_back(ReqAtCylinder(10));
  q.push_back(ReqAtCylinder(20));
  // Sweep starts upward from cylinder 0: order 10, 20, 30.
  SchedulerPick p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 10u);
  q.erase(q.begin() + static_cast<ptrdiff_t>(p.queue_index));
  p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 20u);
  q.erase(q.begin() + static_cast<ptrdiff_t>(p.queue_index));
  // Now a request below the current position arrives: direction reverses
  // only once the sweep is exhausted.
  q.push_back(ReqAtCylinder(5));
  p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 30u);
  q.erase(q.begin() + static_cast<ptrdiff_t>(p.queue_index));
  p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 5u);
}

TEST_F(SchedTest, LookServicesEqualCylinderByArrival) {
  LookScheduler sched;
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(10, SimTime(500)));
  q.push_back(ReqAtCylinder(10, SimTime(100)));
  EXPECT_EQ(sched.Pick(q, ctx_).queue_index, 1u);
}

TEST_F(SchedTest, ClookWrapsToLowestCylinder) {
  ClookScheduler sched;
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(30));
  q.push_back(ReqAtCylinder(50));
  SchedulerPick p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 30u);
  q.erase(q.begin() + static_cast<ptrdiff_t>(p.queue_index));
  p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 50u);
  q.erase(q.begin() + static_cast<ptrdiff_t>(p.queue_index));
  // Below current position: C-LOOK wraps instead of reversing.
  q.push_back(ReqAtCylinder(5));
  q.push_back(ReqAtCylinder(2));
  p = sched.Pick(q, ctx_);
  EXPECT_EQ(disk_.layout().ToChs(p.lba.value()).cylinder, 2u);
}

TEST_F(SchedTest, SatfPicksShortestPredictedAccess) {
  SatfScheduler sched;
  std::vector<QueuedRequest> q;
  // Far cylinder vs near cylinder: the near one has a much smaller seek.
  q.push_back(ReqAtCylinder(55));
  q.push_back(ReqAtCylinder(1));
  const SchedulerPick pick = sched.Pick(q, ctx_);
  EXPECT_EQ(pick.queue_index, 1u);
  EXPECT_GT(pick.predicted_service_us, 0.0);
}

TEST_F(SchedTest, SatfRespectsMaxScan) {
  SatfScheduler sched(/*max_scan=*/1);
  std::vector<QueuedRequest> q;
  q.push_back(ReqAtCylinder(55));
  q.push_back(ReqAtCylinder(1));
  // Only the first entry is examined.
  EXPECT_EQ(sched.Pick(q, ctx_).queue_index, 0u);
}

TEST_F(SchedTest, RsatfChoosesMinimumCostReplica) {
  RsatfScheduler sched;
  std::vector<QueuedRequest> q;
  QueuedRequest r = ReqAtCylinder(40);
  const uint64_t near_lba = disk_.layout().ToLba(Chs{2, 0, 0});
  ASSERT_NE(near_lba, kInvalidLba);
  r.candidate_lbas.push_back(BlockAddr(near_lba));
  q.push_back(r);
  const SchedulerPick pick = sched.Pick(q, ctx_);
  // Whichever replica it picks must have the minimal predicted service time.
  double best = std::numeric_limits<double>::infinity();
  for (BlockAddr cand : r.candidate_lbas) {
    const AccessPlan plan = predictor_.Predict(ctx_.now, cand, 1, false);
    best = std::min(best, predictor_.EffectiveServiceUs(plan));
  }
  EXPECT_DOUBLE_EQ(pick.predicted_service_us, best);
  const AccessPlan chosen_plan = predictor_.Predict(ctx_.now, pick.lba, 1, false);
  EXPECT_DOUBLE_EQ(predictor_.EffectiveServiceUs(chosen_plan), best);
}

TEST_F(SchedTest, RlookFollowsLookOrderThenBestReplica) {
  RlookScheduler sched;
  std::vector<QueuedRequest> q;
  // Two requests; the cylinder-5 one is next in the upward sweep. It has two
  // rotational replicas on the same cylinder; RLOOK must choose one of them
  // by rotational proximity.
  QueuedRequest near = ReqAtCylinder(5);
  const uint64_t replica2 = disk_.layout().ToLba(Chs{5, 1, 20});
  ASSERT_NE(replica2, kInvalidLba);
  near.candidate_lbas.push_back(BlockAddr(replica2));
  q.push_back(ReqAtCylinder(50));
  q.push_back(near);
  const SchedulerPick pick = sched.Pick(q, ctx_);
  EXPECT_EQ(pick.queue_index, 1u);
  EXPECT_EQ(disk_.layout().ToChs(pick.lba.value()).cylinder, 5u);
}

TEST_F(SchedTest, RsatfReplicaChoiceReducesPredictedCost) {
  // With evenly spaced replicas the best replica's predicted rotational wait
  // must be at most ~R/2 (two replicas) while a fixed single copy can cost up
  // to a full R.
  RsatfScheduler rsatf;
  SatfScheduler satf;
  double rsatf_total = 0.0;
  double satf_total = 0.0;
  for (uint32_t s = 0; s < 30; s += 3) {
    std::vector<QueuedRequest> q;
    QueuedRequest r = ReqAtCylinder(7);
    const Chs base = disk_.layout().ToChs(r.candidate_lbas[0].value());
    // Opposite-angle replica on the next head.
    const double angle = disk_.layout().AngleOf(base);
    double opposite = angle + 0.5 + static_cast<double>(s) / 60.0;
    while (opposite >= 1.0) {
      opposite -= 1.0;
    }
    const uint64_t rep = disk_.layout().LbaForAngle(7, base.head + 1, opposite);
    ASSERT_NE(rep, kInvalidLba);
    r.candidate_lbas.push_back(BlockAddr(rep));
    q.push_back(r);
    ScheduleContext ctx = ctx_;
    ctx.now = SimTime(static_cast<int64_t>(s) * 137);
    rsatf_total += rsatf.Pick(q, ctx).predicted_service_us;
    satf_total += satf.Pick(q, ctx).predicted_service_us;
  }
  EXPECT_LT(rsatf_total, satf_total);
}

TEST(SchedulerFactory, MakesAllKinds) {
  for (SchedulerKind kind :
       {SchedulerKind::kFcfs, SchedulerKind::kSstf, SchedulerKind::kLook,
        SchedulerKind::kClook, SchedulerKind::kSatf, SchedulerKind::kRlook,
        SchedulerKind::kRsatf}) {
    auto sched = MakeScheduler(kind);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), SchedulerKindName(kind));
  }
}

}  // namespace
}  // namespace mimdraid
