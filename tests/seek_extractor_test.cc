#include <gtest/gtest.h>

#include <cmath>

#include "src/calib/calibration.h"
#include "src/calib/seek_extractor.h"
#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

TEST(FitSeekProfile, RecoversSyntheticCurve) {
  const SeekProfile truth = MakeSt39133SeekProfile();
  std::vector<std::pair<uint32_t, double>> samples;
  for (uint32_t d : {1u,   2u,   4u,    8u,    16u,   32u,  64u,  128u, 256u,
                     512u, 900u, 1400u, 2000u, 3000u, 4500u, 6000u}) {
    samples.emplace_back(d, truth.SeekUs(d, false));
  }
  const SeekProfile fit = FitSeekProfile(samples, 900.0, 800.0);
  for (uint32_t d : {3u, 10u, 100u, 1000u, 2500u, 5000u}) {
    EXPECT_NEAR(fit.SeekUs(d, false), truth.SeekUs(d, false),
                0.06 * truth.SeekUs(d, false) + 40.0)
        << "d=" << d;
  }
  EXPECT_DOUBLE_EQ(fit.head_switch_us, 900.0);
  EXPECT_DOUBLE_EQ(fit.write_settle_us, 800.0);
}

TEST(FitSeekProfile, HandlesNoisySamples) {
  const SeekProfile truth = MakeTestSeekProfile();
  std::vector<std::pair<uint32_t, double>> samples;
  uint64_t state = 99;
  auto noise = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (static_cast<double>(state >> 40) / (1 << 24) - 0.5) * 80.0;
  };
  for (uint32_t d : {1u, 2u, 3u, 5u, 8u, 12u, 16u, 24u, 32u, 45u, 59u}) {
    samples.emplace_back(d, truth.SeekUs(d, false) + noise());
  }
  const SeekProfile fit = FitSeekProfile(samples, 300.0, 200.0);
  for (uint32_t d : {4u, 20u, 50u}) {
    EXPECT_NEAR(fit.SeekUs(d, false), truth.SeekUs(d, false), 120.0);
  }
}

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::Prototype(), /*seed=*/31,
              /*spindle_phase_us=*/222.0),
        sync_(&sim_, &disk_) {
    CalibrationOptions options;
    options.extract_seek_profile = false;
    cal_ = CalibrateDisk(&sim_, &disk_, options);
    spindle_phase_ = SpindlePhaseFromLattice(disk_.layout(), 0,
                                             cal_.lattice_phase_us,
                                             cal_.rotation_us);
  }

  Simulator sim_;
  SimDisk disk_;
  SyncDisk sync_;
  CalibrationResult cal_;
  double spindle_phase_ = 0.0;
};

TEST_F(ExtractorTest, MeasuredSeekTracksTruthPlusOverhead) {
  SeekCurveExtractor extractor(&sync_, &disk_.layout(), cal_.rotation_us,
                               spindle_phase_);
  SeekExtractionOptions options;
  options.searches_per_distance = 3;
  const SeekProfile truth = MakeTestSeekProfile();
  const DiskNoiseModel noise = DiskNoiseModel::Prototype();
  for (uint32_t d : {2u, 10u, 40u}) {
    const double measured = extractor.MeasureSeekUs(5, 5 + d, false, options);
    // Effective seek = mechanical seek + mean pre-access overhead.
    const double expected = truth.SeekUs(d, false) + noise.overhead_mean_us;
    EXPECT_NEAR(measured, expected, 160.0) << "d=" << d;
  }
}

TEST_F(ExtractorTest, HeadSwitchMeasured) {
  SeekCurveExtractor extractor(&sync_, &disk_.layout(), cal_.rotation_us,
                               spindle_phase_);
  SeekExtractionOptions options;
  const double measured = extractor.MeasureHeadSwitchUs(options);
  const DiskNoiseModel noise = DiskNoiseModel::Prototype();
  EXPECT_NEAR(measured, 300.0 + noise.overhead_mean_us, 160.0);
}

TEST_F(ExtractorTest, FullProfileExtraction) {
  SeekCurveExtractor extractor(&sync_, &disk_.layout(), cal_.rotation_us,
                               spindle_phase_);
  SeekExtractionOptions options;
  options.num_distances = 10;
  const SeekProfile profile = extractor.ExtractProfile(options);
  const SeekProfile truth = MakeTestSeekProfile();
  const DiskNoiseModel noise = DiskNoiseModel::Prototype();
  for (uint32_t d : {3u, 15u, 30u, 50u}) {
    EXPECT_NEAR(profile.SeekUs(d, false),
                truth.SeekUs(d, false) + noise.overhead_mean_us, 250.0)
        << "d=" << d;
  }
  // Write settle within a couple hundred microseconds of truth.
  EXPECT_NEAR(profile.write_settle_us, truth.write_settle_us, 250.0);
}

}  // namespace
}  // namespace mimdraid
