#include <gtest/gtest.h>

#include <cmath>

#include "src/disk/seek_profile.h"

namespace mimdraid {
namespace {

TEST(SeekProfile, ZeroDistanceIsFree) {
  const SeekProfile p = MakeSt39133SeekProfile();
  EXPECT_EQ(p.SeekUs(0, false), 0.0);
  EXPECT_EQ(p.SeekUs(0, true), 0.0);
}

TEST(SeekProfile, St39133WellFormed) {
  EXPECT_TRUE(MakeSt39133SeekProfile().WellFormed());
  EXPECT_TRUE(MakeTestSeekProfile().WellFormed());
}

TEST(SeekProfile, MonotoneNonDecreasing) {
  const SeekProfile p = MakeSt39133SeekProfile();
  double prev = 0.0;
  for (uint32_t d = 1; d < 6962; d += 13) {
    const double t = p.SeekUs(d, false);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SeekProfile, WritesPaySettle) {
  const SeekProfile p = MakeSt39133SeekProfile();
  EXPECT_DOUBLE_EQ(p.SeekUs(100, true) - p.SeekUs(100, false),
                   p.write_settle_us);
}

TEST(SeekProfile, ContinuousAtBoundary) {
  const SeekProfile p = MakeSt39133SeekProfile();
  const double below = p.SeekUs(p.boundary_cylinders - 1, false);
  const double at = p.SeekUs(p.boundary_cylinders, false);
  EXPECT_NEAR(below, at, 60.0);
}

TEST(SeekProfile, FullStrokeNearTenMs) {
  const SeekProfile p = MakeSt39133SeekProfile();
  const double max = p.MaxSeekUs(6962);
  EXPECT_GT(max, 8500.0);
  EXPECT_LT(max, 11000.0);
}

TEST(SeekProfile, AverageRandomSeekNearSpec) {
  // Table 1: 5.2 ms average read seek. Our synthetic profile lands nearby.
  const SeekProfile p = MakeSt39133SeekProfile();
  const double avg = p.AverageRandomSeekUs(6962);
  EXPECT_GT(avg, 4200.0);
  EXPECT_LT(avg, 6300.0);
}

TEST(SeekProfile, AverageBelowMaxAboveMin) {
  const SeekProfile p = MakeTestSeekProfile();
  const double avg = p.AverageRandomSeekUs(60);
  EXPECT_GT(avg, p.SeekUs(1, false) * 0.3);
  EXPECT_LT(avg, p.MaxSeekUs(60));
}

TEST(SeekProfile, ShortRegimeIsSqrtShaped) {
  const SeekProfile p = MakeSt39133SeekProfile();
  // Doubling a short distance should increase time by ~sqrt(2)x on the
  // variable part.
  const double t100 = p.SeekUs(100, false) - p.short_a_us;
  const double t400 = p.SeekUs(400, false) - p.short_a_us;
  EXPECT_NEAR(t400 / t100, 2.0, 0.01);
}

TEST(SeekProfile, LongRegimeIsLinear) {
  const SeekProfile p = MakeSt39133SeekProfile();
  const double t2000 = p.SeekUs(2000, false);
  const double t4000 = p.SeekUs(4000, false);
  const double t6000 = p.SeekUs(6000, false);
  EXPECT_NEAR(t4000 - t2000, t6000 - t4000, 1e-6);
}

TEST(SeekProfile, NotWellFormedWhenDiscontinuous) {
  SeekProfile p = MakeSt39133SeekProfile();
  p.long_a_us += 500.0;
  EXPECT_FALSE(p.WellFormed());
}

}  // namespace
}  // namespace mimdraid
