#include <gtest/gtest.h>

#include "src/disk/sim_disk.h"
#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

class SimDiskTest : public ::testing::Test {
 protected:
  SimDiskTest()
      : disk_(&sim_, MakeTestGeometry(), MakeTestSeekProfile(),
              DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0) {}

  DiskOpResult Access(DiskOp op, uint64_t lba, uint32_t sectors) {
    DiskOpResult result;
    bool done = false;
    disk_.Start(op, BlockAddr(lba), sectors, [&](const DiskOpResult& r) {
      result = r;
      done = true;
    });
    while (!done) {
      EXPECT_TRUE(sim_.Step());
    }
    return result;
  }

  Simulator sim_;
  SimDisk disk_;
};

TEST_F(SimDiskTest, BusyDuringServiceIdleAfter) {
  bool done = false;
  disk_.Start(DiskOp::kRead, BlockAddr(0), 1, [&](const DiskOpResult&) {
    done = true;
    EXPECT_FALSE(disk_.busy());  // callback runs after the disk frees
  });
  EXPECT_TRUE(disk_.busy());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(disk_.busy());
}

TEST_F(SimDiskTest, CompletionDecompositionSums) {
  const DiskOpResult r = Access(DiskOp::kRead, 100, 4);
  EXPECT_NEAR(static_cast<double>(r.ServiceUs().us()),
              r.overhead_us + r.seek_us + r.rotational_us + r.transfer_us, 1.0);
}

TEST_F(SimDiskTest, NoiseFreeOverheadIsExactlyConfigured) {
  const DiskNoiseModel noise = DiskNoiseModel::None();
  const DiskOpResult r = Access(DiskOp::kRead, 10, 1);
  EXPECT_DOUBLE_EQ(r.overhead_us,
                   noise.overhead_mean_us + noise.post_overhead_mean_us);
}

TEST_F(SimDiskTest, BackToBackSameSectorCostsFullRotation) {
  // The second read of the same sector must wait ~a full rotation (the
  // overhead means the slot has just passed).
  Access(DiskOp::kRead, 50, 1);
  const SimTime t0 = sim_.Now();
  const DiskOpResult r2 = Access(DiskOp::kRead, 50, 1);
  const SimDuration gap = r2.completion_us - t0;
  EXPECT_GT(gap, SimDuration(5000));
  EXPECT_LT(gap, SimDuration(7000));
}

TEST_F(SimDiskTest, HeadStateTracksLastAccess) {
  Access(DiskOp::kRead, 2000, 1);
  const Chs chs = disk_.layout().ToChs(2000);
  EXPECT_EQ(disk_.DebugHeadState().cylinder, chs.cylinder);
  EXPECT_EQ(disk_.DebugHeadState().head, chs.head);
}

TEST_F(SimDiskTest, DeterministicAcrossInstances) {
  Simulator sim2;
  SimDisk disk2(&sim2, MakeTestGeometry(), MakeTestSeekProfile(),
                DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0);
  DiskOpResult a;
  DiskOpResult b;
  bool done_a = false;
  bool done_b = false;
  disk_.Start(DiskOp::kRead, BlockAddr(123), 8, [&](const DiskOpResult& r) {
    a = r;
    done_a = true;
  });
  disk2.Start(DiskOp::kRead, BlockAddr(123), 8, [&](const DiskOpResult& r) {
    b = r;
    done_b = true;
  });
  sim_.Run();
  sim2.Run();
  ASSERT_TRUE(done_a && done_b);
  EXPECT_EQ(a.completion_us, b.completion_us);
}

TEST_F(SimDiskTest, SpindlePhaseOffsetsCompletionTimes) {
  Simulator sim2;
  SimDisk shifted(&sim2, MakeTestGeometry(), MakeTestSeekProfile(),
                  DiskNoiseModel::None(), /*seed=*/1,
                  /*spindle_phase_us=*/1500.0);
  DiskOpResult a = Access(DiskOp::kRead, 400, 1);
  DiskOpResult b;
  bool done = false;
  shifted.Start(DiskOp::kRead, BlockAddr(400), 1, [&](const DiskOpResult& r) {
    b = r;
    done = true;
  });
  sim2.Run();
  ASSERT_TRUE(done);
  EXPECT_NE(a.completion_us, b.completion_us);
}

TEST_F(SimDiskTest, WritesSlowerThanReadsAcrossSeeks) {
  // Position at cylinder 0, then access a far sector as read vs write.
  Access(DiskOp::kRead, 0, 1);
  Simulator sim2;
  SimDisk disk2(&sim2, MakeTestGeometry(), MakeTestSeekProfile(),
                DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0);
  // Mirror the same starting state on disk2.
  bool unused = false;
  disk2.Start(DiskOp::kRead, BlockAddr(0), 1,
              [&](const DiskOpResult&) { unused = true; });
  sim2.Run();
  const DiskOpResult r = Access(DiskOp::kRead, 5000, 1);
  DiskOpResult w;
  bool done = false;
  disk2.Start(DiskOp::kWrite, BlockAddr(5000), 1, [&](const DiskOpResult& res) {
    w = res;
    done = true;
  });
  sim2.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(w.seek_us, r.seek_us);
}

TEST(SimDiskNoise, JitterVariesCompletions) {
  Simulator sim;
  DiskNoiseModel noise = DiskNoiseModel::Prototype();
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(), noise,
               /*seed=*/3, /*spindle_phase_us=*/0.0);
  // Repeated single-sector reads of the same LBA: overhead jitter shifts
  // completions off the exact lattice by the post-overhead jitter.
  double prev_overhead = -1.0;
  bool varied = false;
  for (int i = 0; i < 10; ++i) {
    bool done = false;
    DiskOpResult r;
    disk.Start(DiskOp::kRead, BlockAddr(5), 1, [&](const DiskOpResult& res) {
      r = res;
      done = true;
    });
    sim.Run();
    ASSERT_TRUE(done);
    if (prev_overhead >= 0.0 && r.overhead_us != prev_overhead) {
      varied = true;
    }
    prev_overhead = r.overhead_us;
  }
  EXPECT_TRUE(varied);
}

TEST(SimDiskRotation, OverrideAffectsBackToBackGap) {
  Simulator sim;
  SimDisk disk(&sim, MakeTestGeometry(), MakeTestSeekProfile(),
               DiskNoiseModel::None(), /*seed=*/1, /*spindle_phase_us=*/0.0,
               /*rotation_us_override=*/6006.0);
  auto access = [&](uint64_t lba) {
    bool done = false;
    DiskOpResult r;
    disk.Start(DiskOp::kRead, BlockAddr(lba), 1, [&](const DiskOpResult& res) {
      r = res;
      done = true;
    });
    sim.Run();
    EXPECT_TRUE(done);
    return r;
  };
  const DiskOpResult r1 = access(7);
  const DiskOpResult r2 = access(7);
  const SimDuration gap = r2.completion_us - r1.completion_us;
  // One full (slow) rotation, not the nominal 6000.
  EXPECT_NEAR(static_cast<double>(gap.us()), 6006.0, 2.0);
}

}  // namespace
}  // namespace mimdraid

namespace mimdraid {
namespace {

// Zoned bit recording: outer tracks hold more sectors, so sequential
// bandwidth is higher at the outer edge than at the inner edge.
TEST(SimDiskZbr, OuterZoneFasterThanInner) {
  Simulator sim;
  const DiskGeometry geo = MakeSt39133Geometry();
  SimDisk disk(&sim, geo, MakeSt39133SeekProfile(), DiskNoiseModel::None(),
               1, 0.0);
  auto stream_mb_per_s = [&](uint64_t start_lba) {
    const SimTime t0 = sim.Now();
    uint64_t lba = start_lba;
    // Large requests so media rate dominates per-command overhead (each
    // command boundary costs most of a rotation).
    constexpr int kOps = 8;
    constexpr uint32_t kReq = 1024;
    for (int i = 0; i < kOps; ++i) {
      bool done = false;
      disk.Start(DiskOp::kRead, BlockAddr(lba), kReq,
                 [&](const DiskOpResult&) { done = true; });
      while (!done) {
        sim.Step();
      }
      lba += kReq;
    }
    return kOps * kReq * 512.0 / 1e6 / SecondsFromUs(sim.Now() - t0);
  };
  const double outer = stream_mb_per_s(0);
  const double inner =
      stream_mb_per_s(disk.num_sectors() - 8 * 1024 - 2048);
  EXPECT_GT(outer, inner * 1.3);  // SPT 264 vs 165 -> ~1.6x media rate
}

}  // namespace
}  // namespace mimdraid
