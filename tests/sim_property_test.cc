// Property test for the calendar-queue event engine: a reference model (a
// plain binary heap with lazy deletion, the engine's previous implementation)
// must agree with the engine on the exact fire order — time, FIFO tiebreak,
// and clock — over randomized schedule/cancel/reschedule churn, including
// far-future events that exercise the overflow heap and deadlines that park
// the clock between buckets. PendingEvents() is checked exactly throughout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

// Reference semantics: (at, seq) total order with lazy deletion.
class ModelQueue {
 public:
  // Returns the model's id for the scheduled event.
  uint64_t Schedule(int64_t at) {
    const uint64_t id = next_id_++;
    heap_.push(Entry{at, id});
    live_.insert(id);
    return id;
  }

  bool Cancel(uint64_t id) { return live_.erase(id) > 0; }

  size_t Pending() const { return live_.size(); }

  // Pops the next live entry; returns false if none.
  bool Pop(int64_t* at, uint64_t* id) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (live_.erase(top.id) > 0) {
        *at = top.at;
        *id = top.id;
        return true;
      }
    }
    return false;
  }

  // Earliest live fire time, or false if empty (lazy entries skipped without
  // popping live state).
  bool PeekTime(int64_t* at) {
    while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
      heap_.pop();
    }
    if (heap_.empty()) {
      return false;
    }
    *at = heap_.top().at;
    return true;
  }

 private:
  struct Entry {
    int64_t at;
    uint64_t id;  // schedule order == engine seq order
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> live_;
  uint64_t next_id_ = 1;
};

TEST(SimulatorProperty, MatchesReferenceHeapOverRandomChurn) {
  constexpr int kEvents = 10'000;
  Rng rng(20260808);

  Simulator sim;
  ModelQueue model;
  std::vector<uint64_t> engine_fired;  // model ids, in engine fire order
  std::vector<uint64_t> model_fired;

  // Live pairs (model id -> engine id), flat for random cancel picks.
  struct Live {
    uint64_t model_id;
    EventId engine_id;
  };
  std::vector<Live> live;
  std::unordered_set<uint64_t> gone;  // fired model ids
  size_t cleaned = 0;                 // prefix of model_fired already in gone

  int scheduled = 0;
  while (scheduled < kEvents || model.Pending() > 0) {
    const double roll = rng.UniformDouble();
    if (scheduled < kEvents && roll < 0.45) {
      // Schedule: mostly near-future (in the calendar ring), sometimes far
      // enough out to land in the overflow heap, sometimes exactly at now.
      int64_t delta;
      const double kind = rng.UniformDouble();
      if (kind < 0.70) {
        delta = static_cast<int64_t>(rng.UniformU64(5'000));
      } else if (kind < 0.90) {
        delta = static_cast<int64_t>(rng.UniformU64(200'000));
      } else {
        delta = static_cast<int64_t>(rng.UniformU64(50'000'000));
      }
      const int64_t at = sim.Now().us() + delta;
      const uint64_t model_id = model.Schedule(at);
      const EventId engine_id = sim.ScheduleAt(
          SimTime(at), [&engine_fired, model_id] {
            engine_fired.push_back(model_id);
          });
      live.push_back(Live{model_id, engine_id});
      ++scheduled;
    } else if (roll < 0.60 && !live.empty()) {
      // Cancel a random live event (in both). A reschedule is a cancel
      // followed by a later schedule, so this also covers reschedule churn.
      const size_t pick = rng.UniformU64(live.size());
      const Live victim = live[pick];
      live[pick] = live.back();
      live.pop_back();
      EXPECT_TRUE(model.Cancel(victim.model_id));
      EXPECT_TRUE(sim.Cancel(victim.engine_id));
    } else if (roll < 0.80) {
      // Step both once.
      int64_t at;
      uint64_t id;
      if (model.Pop(&at, &id)) {
        model_fired.push_back(id);
        ASSERT_TRUE(sim.Step());
        ASSERT_EQ(sim.Now().us(), at);
      } else {
        ASSERT_FALSE(sim.Step());
      }
    } else {
      // RunUntil a deadline near the next live event (just short of it, at
      // it, or beyond a few of them) — the parked-clock cases.
      int64_t next;
      int64_t deadline = sim.Now().us();
      if (model.PeekTime(&next)) {
        deadline = next + rng.UniformInt(-2, 5'000);
        deadline = std::max(deadline, sim.Now().us());
      } else {
        deadline += static_cast<int64_t>(rng.UniformU64(10'000));
      }
      int64_t at;
      uint64_t id;
      while (model.PeekTime(&at) && at <= deadline) {
        ASSERT_TRUE(model.Pop(&at, &id));
        model_fired.push_back(id);
      }
      sim.RunUntil(SimTime(deadline));
      ASSERT_EQ(sim.Now().us(), deadline);
    }
    // After every operation the live accounting must agree exactly.
    ASSERT_EQ(sim.PendingEvents(), model.Pending());
    ASSERT_EQ(engine_fired.size(), model_fired.size());
    // Drop newly fired events from the live list (both sides fired them).
    if (model_fired.size() > cleaned) {
      gone.insert(model_fired.begin() + static_cast<ptrdiff_t>(cleaned),
                  model_fired.end());
      cleaned = model_fired.size();
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&gone](const Live& l) {
                                  return gone.count(l.model_id) > 0;
                                }),
                 live.end());
    }
  }

  // Identical fire order, element for element.
  ASSERT_EQ(engine_fired, model_fired);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

}  // namespace
}  // namespace mimdraid
