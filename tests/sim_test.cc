#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.h"

namespace mimdraid {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime(0));
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime(30), [&] { order.push_back(3); });
  sim.ScheduleAt(SimTime(10), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime(30));
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(SimTime(100), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime fired_at(-1);
  sim.ScheduleAt(SimTime(50), [&] {
    sim.ScheduleAfter(SimDuration(25), [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, SimTime(75));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(SimTime(10), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, CancelInvalidIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId()));
  EXPECT_FALSE(sim.Cancel(EventId(12345)));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(SimTime(1), [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(SimTime(10), [&] { fired.push_back(SimTime(10)); });
  sim.ScheduleAt(SimTime(20), [&] { fired.push_back(SimTime(20)); });
  sim.ScheduleAt(SimTime(30), [&] { fired.push_back(SimTime(30)); });
  sim.RunUntil(SimTime(20));
  EXPECT_EQ(fired, (std::vector<SimTime>{SimTime(10), SimTime(20)}));
  EXPECT_EQ(sim.Now(), SimTime(20));
  sim.Run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.RunUntil(SimTime(500));
  EXPECT_EQ(sim.Now(), SimTime(500));
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil(SimTime(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.Now(), SimTime(100));
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 10) {
      sim.ScheduleAfter(SimDuration(5), chain);
    }
  };
  sim.ScheduleAt(SimTime(0), chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), SimTime(45));
}

// Regression: Cancel used to accept the id of an already-fired event,
// permanently inserting it into the lazy-deletion set and making
// PendingEvents() (then computed as heap size minus cancelled size)
// underflow and wrap to ~2^64.
TEST(Simulator, CancelFiredEventIsNoOp) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(SimTime(10), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.PendingEvents(), 0u);
  // The stale cancel must not eat a later event either.
  bool fired = false;
  sim.ScheduleAfter(SimDuration(5), [&] { fired = true; });
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, PendingEventsExactAfterFiredIdCancels) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sim.ScheduleAt(SimTime(10 * (i + 1)), [] {}));
  }
  sim.RunUntil(SimTime(20));  // fires ids[0], ids[1]
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_FALSE(sim.Cancel(ids[0]));
  EXPECT_FALSE(sim.Cancel(ids[1]));
  EXPECT_EQ(sim.PendingEvents(), 2u);  // never underflows
  EXPECT_TRUE(sim.Cancel(ids[2]));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.events_fired(), 3u);
}

// An event cancelling itself from inside its own callback has already fired.
TEST(Simulator, CancelSelfInsideCallbackIsNoOp) {
  Simulator sim;
  EventId id;
  bool cancel_result = true;
  id = sim.ScheduleAt(SimTime(10), [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, RunUntilDrainsCancelledEntriesExactlyOnce) {
  Simulator sim;
  // Interleave live and cancelled events around the deadline, then make sure
  // the shared pop-next-live helper leaves the accounting exact.
  const EventId a = sim.ScheduleAt(SimTime(10), [] {});
  const EventId b = sim.ScheduleAt(SimTime(20), [] {});
  const EventId c = sim.ScheduleAt(SimTime(30), [] {});
  sim.ScheduleAt(SimTime(40), [] {});
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_TRUE(sim.Cancel(c));
  sim.RunUntil(SimTime(30));
  EXPECT_EQ(sim.events_fired(), 1u);  // only b
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Cancel(b));
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 2u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, PendingEventsAccounting) {
  Simulator sim;
  const EventId a = sim.ScheduleAt(SimTime(10), [] {});
  sim.ScheduleAt(SimTime(20), [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.events_fired(), 1u);
}

// Regression: Cancel used to only mark the event dead in a lazy-deletion
// set, keeping the callback closure (and everything it captured) alive until
// the entry was eventually popped — which for a far-future watchdog timer
// could be the whole run. Cancel must release the closure immediately.
TEST(Simulator, CancelReleasesCallbackEagerly) {
  Simulator sim;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  const EventId id =
      sim.ScheduleAt(SimTime(1'000'000'000), [payload] { (void)*payload; });
  payload.reset();
  EXPECT_FALSE(watch.expired());  // the pending event holds the last ref
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_TRUE(watch.expired());  // released at Cancel, not at pop
}

// Regression: a schedule-far/cancel churn loop (the watchdog-per-op pattern)
// used to grow the heap and the lazy-deletion set without bound within a
// quiet period. With slot recycling and tombstone compaction both the pool
// and the overflow stay bounded by the live event count, not the churn count.
TEST(Simulator, CancelChurnBoundsQueue) {
  Simulator sim;
  for (int i = 0; i < 100'000; ++i) {
    // Far future: always lands in the overflow heap, the worst case for
    // tombstone accumulation.
    const EventId id =
        sim.ScheduleAfter(SimDuration(500'000'000 + i), [] {});
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_LE(sim.EventSlotsForTest(), 16u);
  EXPECT_LE(sim.OverflowEntriesForTest(), 256u);
  // Near-future churn exercises the ring path the same way.
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = sim.ScheduleAfter(SimDuration(1 + (i % 100)), [] {});
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_LE(sim.EventSlotsForTest(), 16u);
}

// A cancelled event sitting exactly at the deadline must not drag the clock
// past it (RunUntil contracts now() == deadline after the call), and a
// cancelled event beyond the deadline must not stop the clock short.
TEST(Simulator, RunUntilCancelledEventExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime(10), [&] { ++fired; });
  const EventId at_deadline = sim.ScheduleAt(SimTime(20), [&] { ++fired; });
  const EventId beyond = sim.ScheduleAt(SimTime(21), [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(at_deadline));
  EXPECT_TRUE(sim.Cancel(beyond));
  sim.RunUntil(SimTime(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime(20));
  // The clock parked at the deadline; scheduling at it again is legal.
  sim.ScheduleAt(SimTime(20), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), SimTime(20));
}

}  // namespace
}  // namespace mimdraid
