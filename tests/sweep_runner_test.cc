// SweepRunner: ordering, serial-mode semantics, determinism of parallel
// simulation sweeps, job resolution, seed derivation, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/mimd_raid.h"
#include "src/core/sweep_runner.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

TEST(SweepRunner, RunsEveryTaskOnce) {
  SweepRunner runner(4);
  EXPECT_EQ(runner.jobs(), 4u);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> ran(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&ran, i] { ran[i].fetch_add(1); });
  }
  runner.RunAll(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
}

TEST(SweepRunner, SerialModeRunsInlineInSubmissionOrder) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    runner.Submit([&order, caller, i] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
    // Inline semantics: the task has already run when Submit returns.
    ASSERT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  runner.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SweepRunner, ResultsLandInSubmissionOrderSlots) {
  SweepRunner runner(4);
  constexpr int kTasks = 32;
  std::vector<int> results(kTasks, -1);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&results, i] { results[i] = i * i; });
  }
  runner.RunAll(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunner, ReusableAcrossBatches) {
  SweepRunner runner(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      runner.Submit([&count] { count.fetch_add(1); });
    }
    runner.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

// The reason the engine exists: independent Simulator instances per point
// produce results identical to the serial run, for any job count.
TEST(SweepRunner, ParallelSimulationMatchesSerial) {
  constexpr int kPoints = 6;
  auto run_point = [](int index) {
    MimdRaidOptions options;
    options.aspect = [&] {
      ArrayAspect a;
      a.ds = 1 + index % 2;
      a.dr = 2;
      a.dm = 1;
      return a;
    }();
    options.dataset_sectors = 200'000;
    options.seed = SweepRunner::PointSeed(42, static_cast<uint64_t>(index));
    MimdRaid array(options);
    ClosedLoopOptions loop;
    loop.outstanding = 4;
    loop.warmup_ops = 20;
    loop.measure_ops = 150;
    loop.seed = SweepRunner::PointSeed(43, static_cast<uint64_t>(index));
    const RunResult r = RunClosedLoopOnArray(array, loop);
    return r.latency.MeanUs();
  };

  std::vector<double> serial(kPoints), parallel(kPoints);
  {
    SweepRunner runner(1);
    for (int i = 0; i < kPoints; ++i) {
      runner.Submit([&serial, run_point, i] { serial[i] = run_point(i); });
    }
    runner.Wait();
  }
  {
    SweepRunner runner(4);
    for (int i = 0; i < kPoints; ++i) {
      runner.Submit([&parallel, run_point, i] { parallel[i] = run_point(i); });
    }
    runner.Wait();
  }
  for (int i = 0; i < kPoints; ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

TEST(SweepRunner, FirstTaskExceptionRethrownFromWait) {
  SweepRunner runner(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    runner.Submit([&completed, i] {
      if (i == 3) {
        throw std::runtime_error("point 3 failed");
      }
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(runner.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);  // the other points still ran
  // The error is consumed: a later batch starts clean.
  runner.Submit([&completed] { completed.fetch_add(1); });
  runner.Wait();
  EXPECT_EQ(completed.load(), 8);
}

TEST(SweepRunner, SerialModeAlsoDefersExceptionToWait) {
  SweepRunner runner(1);
  runner.Submit([] { throw std::runtime_error("serial point failed"); });
  EXPECT_THROW(runner.Wait(), std::runtime_error);
}

TEST(SweepRunner, ResolveJobsPrecedence) {
  ASSERT_EQ(unsetenv("MIMDRAID_JOBS"), 0);
  EXPECT_EQ(SweepRunner::ResolveJobs(3), 3u);
  EXPECT_GE(SweepRunner::ResolveJobs(0), 1u);  // hardware_concurrency or 1

  ASSERT_EQ(setenv("MIMDRAID_JOBS", "5", 1), 0);
  EXPECT_EQ(SweepRunner::ResolveJobs(0), 5u);
  EXPECT_EQ(SweepRunner::ResolveJobs(2), 2u);  // explicit request wins

  ASSERT_EQ(setenv("MIMDRAID_JOBS", "garbage", 1), 0);
  EXPECT_GE(SweepRunner::ResolveJobs(0), 1u);
  ASSERT_EQ(unsetenv("MIMDRAID_JOBS"), 0);
}

TEST(SweepRunner, PointSeedDeterministicAndDistinct) {
  EXPECT_EQ(SweepRunner::PointSeed(42, 7), SweepRunner::PointSeed(42, 7));
  std::set<uint64_t> seen;
  for (uint64_t base : {0ull, 1ull, 42ull}) {
    for (uint64_t i = 0; i < 100; ++i) {
      seen.insert(SweepRunner::PointSeed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across bases or indices
  // Usable directly as an Rng seed stream.
  Rng a(SweepRunner::PointSeed(42, 0));
  Rng b(SweepRunner::PointSeed(42, 1));
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace mimdraid
