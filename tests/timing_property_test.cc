// Property tests for DiskTimingModel: invariants that must hold for every
// access on every geometry.
#include <gtest/gtest.h>

#include <tuple>

#include "src/disk/timing.h"
#include "src/util/rng.h"

namespace mimdraid {
namespace {

enum class Geo { kTest, kSt39133 };

class TimingProperty : public ::testing::TestWithParam<std::tuple<Geo, int>> {
 protected:
  TimingProperty()
      : geo_(std::get<0>(GetParam()) == Geo::kTest ? MakeTestGeometry()
                                                   : MakeSt39133Geometry()),
        layout_(&geo_),
        profile_(MakeSt39133SeekProfile()),
        model_(&layout_, profile_, /*phase=*/777.0),
        rng_(static_cast<uint64_t>(std::get<1>(GetParam()))) {}

  HeadState RandomHead() {
    HeadState h;
    h.cylinder = static_cast<uint32_t>(rng_.UniformU64(geo_.num_cylinders));
    h.head = static_cast<uint32_t>(rng_.UniformU64(geo_.num_heads));
    return h;
  }

  DiskGeometry geo_;
  DiskLayout layout_;
  SeekProfile profile_;
  DiskTimingModel model_;
  Rng rng_;
};

TEST_P(TimingProperty, PartsAlwaysSumToTotal) {
  for (int i = 0; i < 400; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(128));
    const uint64_t lba =
        rng_.UniformU64(layout_.num_data_sectors() - sectors);
    const AccessPlan p = model_.Plan(RandomHead(), rng_.UniformDouble(0, 1e8),
                                     lba, sectors, rng_.Bernoulli(0.5));
    EXPECT_NEAR(p.total_us, p.seek_us + p.rotational_us + p.transfer_us, 1e-6);
    EXPECT_GE(p.seek_us, 0.0);
    EXPECT_GE(p.rotational_us, 0.0);
    EXPECT_GT(p.transfer_us, 0.0);
  }
}

TEST_P(TimingProperty, TransferIsSumOfPerSectorSlotTimes) {
  for (int i = 0; i < 200; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(64));
    const uint64_t lba =
        rng_.UniformU64(layout_.num_data_sectors() - sectors);
    const AccessPlan p = model_.Plan(RandomHead(), 0.0, lba, sectors, false);
    // Transfer time is exactly the sum of each sector's own slot time
    // (sectors in an inner zone take longer to pass under the head).
    double expected = 0.0;
    for (uint32_t s = 0; s < sectors; ++s) {
      expected += geo_.SlotTimeUs(layout_.ToChs(lba + s).cylinder);
    }
    EXPECT_NEAR(p.transfer_us, expected, 1e-6);
  }
}

TEST_P(TimingProperty, EndStateMatchesLastSector) {
  for (int i = 0; i < 200; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(256));
    const uint64_t lba =
        rng_.UniformU64(layout_.num_data_sectors() - sectors);
    const AccessPlan p = model_.Plan(RandomHead(), 0.0, lba, sectors, false);
    const Chs last = layout_.ToChs(lba + sectors - 1);
    EXPECT_EQ(p.end_state.cylinder, last.cylinder);
    EXPECT_EQ(p.end_state.head, last.head);
  }
}

TEST_P(TimingProperty, SingleSectorBoundedByMaxSeekPlusRotation) {
  const double bound = profile_.MaxSeekUs(geo_.num_cylinders) +
                       static_cast<double>(geo_.RotationUs().us()) +
                       geo_.SlotTimeUs(0) + 1.0;
  for (int i = 0; i < 400; ++i) {
    const uint64_t lba = rng_.UniformU64(layout_.num_data_sectors());
    const AccessPlan p = model_.Plan(RandomHead(), rng_.UniformDouble(0, 1e9),
                                     lba, 1, false);
    EXPECT_LE(p.total_us, bound);
  }
}

TEST_P(TimingProperty, SequentialFullTrackNeverLosesARotation) {
  // Reading an aligned full track, starting aligned with its first slot,
  // takes exactly one rotation of transfer plus sub-rotation positioning.
  for (int i = 0; i < 100; ++i) {
    const uint64_t lba = rng_.UniformU64(layout_.num_data_sectors());
    const Chs chs = layout_.ToChs(lba);
    const uint64_t track_start = lba - chs.sector;
    const uint32_t spt = geo_.SectorsPerTrack(chs.cylinder);
    if (track_start + spt > layout_.num_data_sectors()) {
      continue;
    }
    const HeadState at{chs.cylinder, chs.head};
    const AccessPlan p = model_.Plan(at, rng_.UniformDouble(0, 1e8),
                                     track_start, spt, false);
    const double rotation = static_cast<double>(geo_.RotationUs().us());
    EXPECT_NEAR(p.transfer_us, rotation, 1e-6);
    EXPECT_LT(p.rotational_us, rotation);
  }
}

TEST_P(TimingProperty, WriteNeverFasterThanReadFromSameState) {
  for (int i = 0; i < 200; ++i) {
    const uint64_t lba = rng_.UniformU64(layout_.num_data_sectors() - 8);
    const HeadState head = RandomHead();
    const double t = rng_.UniformDouble(0, 1e8);
    const AccessPlan r = model_.Plan(head, t, lba, 8, false);
    const AccessPlan w = model_.Plan(head, t, lba, 8, true);
    // The write's extra settle may be absorbed by rotational wait, but the
    // total can never be smaller by more than a full rotation's wrap.
    EXPECT_GE(w.seek_us, r.seek_us);
  }
}

// The scheduler-pruning lower bounds must never exceed the full plan's
// total: a violation would let a scheduler skip a candidate that could have
// won the scan, silently changing dispatch order. Checked with and without
// bad-sector remaps (a remap relocates an LBA to zone spare space, possibly
// on another cylinder) and after a rotation re-estimate (which moves the
// per-slot transfer floor).
TEST_P(TimingProperty, LowerBoundsNeverExceedPlanTotal) {
  for (int round = 0; round < 3; ++round) {
    if (round == 1) {
      for (int i = 0; i < 100; ++i) {
        layout_.AddBadSector(rng_.UniformU64(layout_.num_data_sectors()));
      }
    } else if (round == 2) {
      model_.set_rotation_us(model_.rotation_us() * 1.0013);
      model_.set_spindle_phase_us(41.9);
    }
    for (int i = 0; i < 4000; ++i) {
      const HeadState head = RandomHead();
      const double start = rng_.UniformDouble(0, 1e9);
      const uint32_t sectors = 1 + static_cast<uint32_t>(rng_.UniformU64(64));
      const uint64_t lba =
          rng_.UniformU64(layout_.num_data_sectors() - sectors);
      const bool is_write = rng_.Bernoulli(0.5);
      const AccessPlan p = model_.Plan(head, start, lba, sectors, is_write);
      ASSERT_LE(model_.SeekLowerBoundUs(head, lba, sectors, is_write),
                p.total_us)
          << "round=" << round << " lba=" << lba << " sectors=" << sectors;
      ASSERT_LE(model_.AccessLowerBoundUs(head, start, lba, sectors, is_write),
                p.total_us)
          << "round=" << round << " lba=" << lba << " sectors=" << sectors
          << " start=" << start;
    }
  }
}

TEST_P(TimingProperty, MinSlotTimeTracksRotationRefresh) {
  const double before = model_.MinSlotTimeUs();
  model_.set_rotation_us(model_.rotation_us() * 0.5);
  EXPECT_DOUBLE_EQ(model_.MinSlotTimeUs(), before * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TimingProperty,
    ::testing::Values(std::tuple{Geo::kTest, 1}, std::tuple{Geo::kTest, 2},
                      std::tuple{Geo::kSt39133, 3},
                      std::tuple{Geo::kSt39133, 4}),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param) == Geo::kTest ? "Test"
                                                               : "St39133") +
             "_seed" + std::to_string(std::get<1>(suite_info.param));
    });

}  // namespace
}  // namespace mimdraid
