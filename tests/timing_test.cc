#include <gtest/gtest.h>

#include <cmath>

#include "src/disk/timing.h"

namespace mimdraid {
namespace {

class TimingTest : public ::testing::Test {
 protected:
  TimingTest()
      : geo_(MakeTestGeometry()),
        layout_(&geo_),
        profile_(MakeTestSeekProfile()),
        model_(&layout_, profile_, /*spindle_phase_us=*/0.0) {}

  DiskGeometry geo_;
  DiskLayout layout_;
  SeekProfile profile_;
  DiskTimingModel model_;
};

TEST_F(TimingTest, SpindleAngleWrapsEveryRotation) {
  EXPECT_DOUBLE_EQ(model_.SpindleAngleAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model_.SpindleAngleAt(3000.0), 0.5);
  EXPECT_DOUBLE_EQ(model_.SpindleAngleAt(6000.0), 0.0);
  EXPECT_DOUBLE_EQ(model_.SpindleAngleAt(9000.0), 0.5);
}

TEST_F(TimingTest, SpindlePhaseShiftsAngle) {
  DiskTimingModel shifted(&layout_, profile_, /*spindle_phase_us=*/1500.0);
  EXPECT_DOUBLE_EQ(shifted.SpindleAngleAt(1500.0), 0.0);
  EXPECT_DOUBLE_EQ(shifted.SpindleAngleAt(3000.0), 0.25);
}

TEST_F(TimingTest, TimeUntilAngleNonNegativeAndBounded) {
  for (double t : {0.0, 123.4, 5999.0, 77777.7}) {
    for (double a : {0.0, 0.3, 0.9}) {
      const double w = model_.TimeUntilAngle(t, a);
      EXPECT_GE(w, 0.0);
      EXPECT_LT(w, 6000.0 + 1e-6);
    }
  }
}

TEST_F(TimingTest, SingleSectorOnCurrentTrackCostsLessThanRotation) {
  const Chs chs = layout_.ToChs(0);
  const HeadState at{chs.cylinder, chs.head};
  const AccessPlan plan = model_.Plan(at, 100.0, 0, 1, false);
  EXPECT_EQ(plan.seek_us, 0.0);
  EXPECT_LT(plan.total_us, 6000.0 + 1e-6);
  EXPECT_DOUBLE_EQ(plan.transfer_us, 6000.0 / 40);
}

TEST_F(TimingTest, RotationalWaitMatchesSlotPosition) {
  const Chs chs = layout_.ToChs(5);
  const HeadState at{chs.cylinder, chs.head};
  const uint32_t slot = layout_.SlotOf(chs);
  const double slot_angle = static_cast<double>(slot) / 40;
  const double start = 250.0;
  const AccessPlan plan = model_.Plan(at, start, 5, 1, false);
  const double expected_wait = model_.TimeUntilAngle(start, slot_angle);
  EXPECT_NEAR(plan.rotational_us, expected_wait, 1e-9);
}

TEST_F(TimingTest, FullTrackReadTakesOneRotationPlusWait) {
  // Reading all 40 sectors of a track: transfer = exactly one rotation.
  const Chs chs = layout_.ToChs(0);
  const HeadState at{chs.cylinder, chs.head};
  const AccessPlan plan = model_.Plan(at, 0.0, 0, 40, false);
  EXPECT_DOUBLE_EQ(plan.transfer_us, 6000.0);
}

TEST_F(TimingTest, TrackCrossingUsesHeadSwitchNotSeek) {
  // A transfer spanning two tracks of the same cylinder pays one head switch.
  const uint64_t lba = 38;  // track 0 holds LBAs 0..39 (cyl 0, head 1)
  const Chs chs = layout_.ToChs(lba);
  const HeadState at{chs.cylinder, chs.head};
  const AccessPlan plan = model_.Plan(at, 0.0, lba, 4, false);
  EXPECT_DOUBLE_EQ(plan.seek_us, profile_.head_switch_us);
}

TEST_F(TimingTest, SkewAbsorbsHeadSwitchForSequentialTransfer) {
  // With proper skew, a cross-track sequential read does not lose a
  // rotation: total < transfer + switch + skew-gap + one slot.
  const uint64_t lba = 35;
  const Chs chs = layout_.ToChs(lba);
  const HeadState at{chs.cylinder, chs.head};
  // Start aligned so the first sector is reachable without wait.
  const double slot_angle = layout_.AngleOf(chs);
  const double start = model_.TimeUntilAngle(0.0, slot_angle);
  const AccessPlan plan = model_.Plan(at, start, lba, 10, false);
  const double slot_us = 6000.0 / 40;
  const double skew_gap = geo_.zones[0].track_skew * slot_us;
  EXPECT_LT(plan.total_us, 10 * slot_us + skew_gap + slot_us + 1e-6);
  // And strictly less than a full extra rotation.
  EXPECT_LT(plan.total_us, 10 * slot_us + 6000.0);
}

TEST_F(TimingTest, SeekChargedForCylinderMove) {
  const Chs chs = layout_.ToChs(0);
  const HeadState far_away{chs.cylinder + 20, chs.head};
  const AccessPlan plan = model_.Plan(far_away, 0.0, 0, 1, false);
  EXPECT_DOUBLE_EQ(plan.seek_us, profile_.SeekUs(20, false));
}

TEST_F(TimingTest, WriteSeekIncludesSettle) {
  const Chs chs = layout_.ToChs(0);
  const HeadState far_away{chs.cylinder + 20, chs.head};
  const AccessPlan r = model_.Plan(far_away, 0.0, 0, 1, false);
  const AccessPlan w = model_.Plan(far_away, 0.0, 0, 1, true);
  EXPECT_DOUBLE_EQ(w.seek_us - r.seek_us, profile_.write_settle_us);
}

TEST_F(TimingTest, EndStateAtLastSectorTrack) {
  const uint64_t lba = 38;
  const Chs last = layout_.ToChs(lba + 3);
  const Chs first = layout_.ToChs(lba);
  const HeadState at{first.cylinder, first.head};
  const AccessPlan plan = model_.Plan(at, 0.0, lba, 4, false);
  EXPECT_EQ(plan.end_state.cylinder, last.cylinder);
  EXPECT_EQ(plan.end_state.head, last.head);
}

TEST_F(TimingTest, TotalIsSumOfParts) {
  const HeadState at{10, 0};
  const AccessPlan plan = model_.Plan(at, 1234.0, 500, 8, false);
  EXPECT_NEAR(plan.total_us,
              plan.seek_us + plan.rotational_us + plan.transfer_us, 1e-9);
}

TEST_F(TimingTest, DeterministicForSameInputs) {
  const HeadState at{3, 1};
  const AccessPlan a = model_.Plan(at, 777.0, 444, 16, false);
  const AccessPlan b = model_.Plan(at, 777.0, 444, 16, false);
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.rotational_us, b.rotational_us);
}

TEST_F(TimingTest, RemappedSectorBreaksRun) {
  layout_.AddBadSector(20);
  const Chs chs = layout_.ToChs(18);
  const HeadState at{chs.cylinder, chs.head};
  // Reading 18..21 must detour to the spare track and back.
  const AccessPlan plan = model_.Plan(at, 0.0, 18, 4, false);
  // The detour pays at least one extra positioning (head switch or seek).
  EXPECT_GT(plan.seek_us, 0.0);
}

TEST_F(TimingTest, RotationOverrideChangesPeriod) {
  DiskTimingModel fast(&layout_, profile_, 0.0, /*rotation_us_override=*/5000.0);
  EXPECT_DOUBLE_EQ(fast.rotation_us(), 5000.0);
  EXPECT_DOUBLE_EQ(fast.SpindleAngleAt(2500.0), 0.5);
}

}  // namespace
}  // namespace mimdraid
