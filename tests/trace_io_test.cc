#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/workload/synthetic.h"
#include "src/workload/trace_io.h"

namespace mimdraid {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  SyntheticTraceParams params = CelloBaseParams(600, 77);
  params.dataset_sectors = 500'000;
  params.io_per_s = 50.0;
  const Trace original = GenerateSyntheticTrace(params);
  ASSERT_GT(original.records.size(), 100u);

  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(SaveTrace(original, path));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.dataset_sectors, original.dataset_sectors);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (size_t i = 0; i < loaded.records.size(); i += 17) {
    EXPECT_EQ(loaded.records[i].time_us, original.records[i].time_us);
    EXPECT_EQ(loaded.records[i].is_write, original.records[i].is_write);
    EXPECT_EQ(loaded.records[i].is_async, original.records[i].is_async);
    EXPECT_EQ(loaded.records[i].lba, original.records[i].lba);
    EXPECT_EQ(loaded.records[i].sectors, original.records[i].sectors);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMissingFile) {
  Trace t;
  EXPECT_FALSE(LoadTrace(TempPath("does-not-exist.trace"), &t));
}

TEST(TraceIo, LoadRejectsBadHeader) {
  const std::string path = TempPath("bad-header.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "not a trace\n");
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(LoadTrace(path, &t));
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsOutOfRangeRecord) {
  const std::string path = TempPath("bad-record.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# mimdraid-trace v1 x 1000\n");
  std::fprintf(f, "0 R 999 8\n");  // 999+8 > 1000
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(LoadTrace(path, &t));
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsBadOpCode) {
  const std::string path = TempPath("bad-op.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# mimdraid-trace v1 x 1000\n");
  std::fprintf(f, "0 X 0 8\n");
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(LoadTrace(path, &t));
  std::remove(path.c_str());
}

TEST(TraceIo, SaveRejectsUnwritablePath) {
  Trace t;
  t.dataset_sectors = 10;
  EXPECT_FALSE(SaveTrace(t, "/nonexistent-dir/x.trace"));
}

}  // namespace
}  // namespace mimdraid
