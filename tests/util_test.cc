#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/summary.h"
#include "src/util/time.h"

namespace mimdraid {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(7);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    counts[rng.UniformU64(7)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // roughly uniform (expected 1000)
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 6.0);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(19);
  Summary s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.Normal(100.0, 15.0));
  }
  EXPECT_NEAR(s.mean(), 100.0, 0.5);
  EXPECT_NEAR(s.stddev(), 15.0, 0.5);
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(29);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, SampleInRange) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(41);
  ZipfSampler zipf(1000, 1.0);
  int first_decile = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 100) {
      ++first_decile;
    }
  }
  // For theta=1 over 1000 items, the top 10% carries ~62% of the mass.
  EXPECT_GT(first_decile, n / 2);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(43);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(47);
  Summary all;
  Summary a;
  Summary b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(10, 3);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.Add(5.0);
  Summary empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Check, PassingChecksAreSilent) {
  MIMDRAID_CHECK(true);
  MIMDRAID_CHECK_LE(1, 2);
  MIMDRAID_CHECK_LT(1, 2);
  MIMDRAID_CHECK_GE(2, 2);
  MIMDRAID_CHECK_GT(3, 2);
  MIMDRAID_CHECK_EQ(4, 4);
  MIMDRAID_CHECK_NE(4, 5);
  MIMDRAID_CHECK(true) << "streamed context is not evaluated on success";
}

TEST(Check, OperandsEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto next = [&evaluations]() { return ++evaluations; };
  MIMDRAID_CHECK_GE(next(), 1);
  EXPECT_EQ(evaluations, 1);
  MIMDRAID_CHECK_LE(0, next());
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckDeath, ComparisonReportsBothOperandValues) {
  const uint64_t lhs = 5;
  const uint64_t rhs = 3;
  EXPECT_DEATH(MIMDRAID_CHECK_LE(lhs, rhs), "lhs <= rhs \\(5 vs 3\\)");
  EXPECT_DEATH(MIMDRAID_CHECK_EQ(lhs, rhs), "lhs == rhs \\(5 vs 3\\)");
  EXPECT_DEATH(MIMDRAID_CHECK_GT(rhs, lhs), "rhs > lhs \\(3 vs 5\\)");
}

TEST(CheckDeath, PlainCheckPrintsExpressionText) {
  const bool queue_drained = false;
  EXPECT_DEATH(MIMDRAID_CHECK(queue_drained), "queue_drained");
}

TEST(CheckDeath, StreamedContextAppearsInMessage) {
  const int disk = 7;
  EXPECT_DEATH(MIMDRAID_CHECK_EQ(1, 2) << "disk " << disk << " out of sync",
               "1 == 2 \\(1 vs 2\\) disk 7 out of sync");
}

TEST(CheckDeath, DcheckActiveExactlyInDebugBuilds) {
#ifdef NDEBUG
  // Compiled out: the failing comparison and its operands never evaluate.
  int evaluations = 0;
  auto next = [&evaluations]() { return ++evaluations; };
  MIMDRAID_DCHECK_EQ(next(), -1) << "unused";
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(MIMDRAID_DCHECK_EQ(1, -1), "1 == -1 \\(1 vs -1\\)");
#endif
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(UsFromMs(2.5), SimDuration(2500));
  EXPECT_DOUBLE_EQ(MsFromUs(SimDuration(2500)), 2.5);
  EXPECT_EQ(UsFromSeconds(1.5), SimDuration(1'500'000));
  EXPECT_DOUBLE_EQ(SecondsFromUs(SimDuration(1'500'000)), 1.5);
}

}  // namespace
}  // namespace mimdraid
