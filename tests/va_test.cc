// Virtual-array layer: the allocator's four placement policies (capacity
// conservation, no over-allocation, determinism under PointSeed) and an
// end-to-end multi-tenant run over a mixed-generation fleet with per-VA
// stats exported into one shared registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "src/core/mimd_raid.h"
#include "src/obs/stats_registry.h"
#include "src/obs/trace_collector.h"
#include "src/util/rng.h"
#include "src/va/virtual_array.h"

namespace mimdraid {
namespace {

constexpr uint64_t kStepBudget = 30'000'000;

// A slower, bigger drive generation next to MakeTestGeometry()'s: 7200 RPM
// and 50% more cylinders, so capacities (and the capacity-weighted deal)
// genuinely differ across generations.
DiskGeometry MakeSlowBigGeometry() {
  DiskGeometry g = MakeTestGeometry();
  g.rpm = 7200;
  g.num_cylinders = 90;
  return g;
}

// Two generations; `big_drives` fleet slots run the big generation (listed
// first), the rest the small one.
FleetSpec MakeMixedFleet(size_t num_drives, size_t big_drives) {
  FleetSpec fleet;
  DriveParams big;
  big.name = "big7200";
  big.geometry = MakeSlowBigGeometry();
  big.profile = MakeTestSeekProfile();
  fleet.generations.push_back(big);
  DriveParams small;
  small.name = "small10k";
  small.geometry = MakeTestGeometry();
  small.profile = MakeTestSeekProfile();
  fleet.generations.push_back(small);
  for (size_t d = 0; d < num_drives; ++d) {
    fleet.slot_generation.push_back(d < big_drives ? 0u : 1u);
  }
  return fleet;
}

FleetSpec MakeUniformFleet(size_t num_drives) {
  return MakeMixedFleet(num_drives, /*big_drives=*/0);
}

VaRequest MirrorRequest(const std::string& name, uint64_t dataset = 2400) {
  VaRequest r;
  r.name = name;
  r.backend = ArrayBackendKind::kMirror;
  r.aspect.ds = 2;
  r.aspect.dr = 1;
  r.aspect.dm = 2;
  r.dataset_sectors = dataset;
  r.stripe_unit_sectors = 16;
  return r;
}

VaRequest Raid5Request(const std::string& name, uint64_t dataset = 2400) {
  VaRequest r;
  r.name = name;
  r.backend = ArrayBackendKind::kRaid5;
  r.aspect.ds = 4;
  r.aspect.dr = 1;
  r.aspect.dm = 1;
  r.dataset_sectors = dataset;
  r.stripe_unit_sectors = 16;
  return r;
}

VaRequest ErasureRequest(const std::string& name, uint64_t dataset = 2400) {
  VaRequest r;
  r.name = name;
  r.backend = ArrayBackendKind::kErasure;
  r.aspect.ds = 4;
  r.aspect.dr = 1;
  r.aspect.dm = 1;
  r.parity_shards = 2;  // a 2+2 code
  r.dataset_sectors = dataset;
  r.stripe_unit_sectors = 16;
  return r;
}

const VaPlacement kAllPolicies[] = {
    VaPlacement::kMostFree, VaPlacement::kLeastFree,
    VaPlacement::kProbabilistic, VaPlacement::kRoundRobin};

TEST(VaAllocatorTest, PerDriveSectorsFollowsRedundancy) {
  // Mirror 2x2x2: 4 columns, 2400/16 = 150 units -> 38 units/column, each
  // sector stored with Dr=2 same-disk replicas.
  VaRequest m = MirrorRequest("m");
  m.aspect.dr = 2;
  EXPECT_EQ(VirtualArrayAllocator::PerDriveSectors(m), 38u * 16u * 2u);
  // RAID-5 over 4 disks: 3 data shares cover the dataset, unit-rounded.
  VaRequest r = Raid5Request("r");
  EXPECT_EQ(VirtualArrayAllocator::PerDriveSectors(r), 800u);
  // Erasure 2+2 over 4 disks: k=2 data shares cover the dataset; every
  // shard (data or parity) reserves the same per-drive extent.
  VaRequest e = ErasureRequest("e");
  EXPECT_EQ(VirtualArrayAllocator::PerDriveSectors(e), 1200u);
}

TEST(VaAllocatorTest, ReleaseFailsFastOnDoubleOrUnknownRelease) {
  VirtualArrayAllocator alloc(MakeUniformFleet(6), 6, VaPlacement::kMostFree,
                              /*seed=*/3);
  const VaAllocation a = *alloc.Allocate(MirrorRequest("a"));
  alloc.Release(a);
  // Releasing the same allocation again must trip the liveness check before
  // any free-space is credited, not silently inflate the pool.
  EXPECT_DEATH(alloc.Release(a), "CHECK");

  VirtualArrayAllocator other(MakeUniformFleet(6), 6, VaPlacement::kMostFree,
                              /*seed=*/3);
  const VaAllocation b = *alloc.Allocate(MirrorRequest("b"));
  // An allocation this allocator never granted is just as fatal.
  EXPECT_DEATH(other.Release(b), "CHECK");
}

TEST(VaAllocatorTest, ConservesCapacityAndNeverOverAllocates) {
  for (const VaPlacement policy : kAllPolicies) {
    SCOPED_TRACE(VaPlacementName(policy));
    VirtualArrayAllocator alloc(MakeMixedFleet(8, 3), 8, policy, /*seed=*/9);
    const uint64_t total = alloc.TotalFreeSectors();
    for (uint32_t d = 0; d < alloc.num_drives(); ++d) {
      EXPECT_EQ(alloc.DriveFreeSectors(d), alloc.DriveCapacitySectors(d));
    }

    // Grant VAs until the fleet refuses; every grant must use distinct
    // drives and account exactly.
    std::vector<VaAllocation> granted;
    uint64_t reserved = 0;
    while (true) {
      std::optional<VaAllocation> a =
          alloc.Allocate(MirrorRequest("t" + std::to_string(granted.size())));
      if (!a.has_value()) {
        break;
      }
      ASSERT_EQ(a->drives.size(), 4u);
      std::vector<uint32_t> sorted = a->drives;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << "allocation reused a drive";
      reserved += a->per_drive_sectors * a->drives.size();
      granted.push_back(*a);
      EXPECT_EQ(alloc.TotalFreeSectors(), total - reserved);
      ASSERT_LT(granted.size(), 10'000u) << "allocator never refused";
    }
    EXPECT_GT(granted.size(), 1u);
    // The refusal really was capacity: fewer than 4 drives fit one more VA.
    const uint64_t need =
        VirtualArrayAllocator::PerDriveSectors(MirrorRequest("x"));
    size_t fitting = 0;
    for (uint32_t d = 0; d < alloc.num_drives(); ++d) {
      EXPECT_LE(alloc.DriveFreeSectors(d), alloc.DriveCapacitySectors(d));
      if (alloc.DriveFreeSectors(d) >= need) {
        ++fitting;
      }
    }
    EXPECT_LT(fitting, 4u);

    // Releasing everything restores the fleet exactly.
    for (const VaAllocation& a : granted) {
      alloc.Release(a);
    }
    EXPECT_EQ(alloc.TotalFreeSectors(), total);
    for (uint32_t d = 0; d < alloc.num_drives(); ++d) {
      EXPECT_EQ(alloc.DriveFreeSectors(d), alloc.DriveCapacitySectors(d));
    }
  }
}

TEST(VaAllocatorTest, DeterministicUnderPointSeed) {
  for (const VaPlacement policy : kAllPolicies) {
    SCOPED_TRACE(VaPlacementName(policy));
    VirtualArrayAllocator a(MakeMixedFleet(10, 4), 10, policy, /*seed=*/17);
    VirtualArrayAllocator b(MakeMixedFleet(10, 4), 10, policy, /*seed=*/17);
    for (int i = 0; i < 6; ++i) {
      const VaRequest request = (i % 2 == 0)
                                    ? MirrorRequest("t" + std::to_string(i))
                                    : Raid5Request("t" + std::to_string(i));
      std::optional<VaAllocation> ra = a.Allocate(request);
      std::optional<VaAllocation> rb = b.Allocate(request);
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (!ra.has_value()) {
        continue;
      }
      EXPECT_EQ(ra->id, rb->id);
      EXPECT_EQ(ra->drives, rb->drives);
      EXPECT_EQ(ra->per_drive_sectors, rb->per_drive_sectors);
    }
  }
}

TEST(VaAllocatorTest, PolicySemanticsOnUniformFleet) {
  // Most-free spreads: with equal capacities the second VA avoids the first
  // VA's (now fuller) drives.
  {
    VirtualArrayAllocator alloc(MakeUniformFleet(8), 8,
                                VaPlacement::kMostFree);
    const VaAllocation first = *alloc.Allocate(MirrorRequest("a"));
    const VaAllocation second = *alloc.Allocate(MirrorRequest("b"));
    for (const uint32_t d : second.drives) {
      for (const uint32_t used : first.drives) {
        EXPECT_NE(d, used);
      }
    }
  }
  // Least-free packs: the second VA lands back on the first VA's drives as
  // long as they still fit.
  {
    VirtualArrayAllocator alloc(MakeUniformFleet(8), 8,
                                VaPlacement::kLeastFree);
    const VaAllocation first = *alloc.Allocate(MirrorRequest("a"));
    const VaAllocation second = *alloc.Allocate(MirrorRequest("b"));
    std::vector<uint32_t> f = first.drives;
    std::vector<uint32_t> s = second.drives;
    std::sort(f.begin(), f.end());
    std::sort(s.begin(), s.end());
    EXPECT_EQ(f, s);
  }
  // Round-robin cycles the cursor across the fleet.
  {
    VirtualArrayAllocator alloc(MakeUniformFleet(8), 8,
                                VaPlacement::kRoundRobin);
    const VaAllocation first = *alloc.Allocate(MirrorRequest("a"));
    const VaAllocation second = *alloc.Allocate(MirrorRequest("b"));
    EXPECT_EQ(first.drives, (std::vector<uint32_t>{0, 1, 2, 3}));
    EXPECT_EQ(second.drives, (std::vector<uint32_t>{4, 5, 6, 7}));
  }
  // Probabilistic stays inside the fleet and picks distinct drives (its
  // determinism is covered above).
  {
    VirtualArrayAllocator alloc(MakeUniformFleet(8), 8,
                                VaPlacement::kProbabilistic, /*seed=*/3);
    const VaAllocation a = *alloc.Allocate(MirrorRequest("a"));
    std::vector<uint32_t> drives = a.drives;
    std::sort(drives.begin(), drives.end());
    EXPECT_TRUE(std::adjacent_find(drives.begin(), drives.end()) ==
                drives.end());
    EXPECT_LT(drives.back(), 8u);
  }
}

TEST(VaAllocatorTest, OversizedRequestRefusedWithoutStateChange) {
  for (const VaPlacement policy : kAllPolicies) {
    SCOPED_TRACE(VaPlacementName(policy));
    VirtualArrayAllocator alloc(MakeMixedFleet(6, 2), 6, policy);
    const uint64_t total = alloc.TotalFreeSectors();
    VaRequest huge = MirrorRequest("huge");
    huge.dataset_sectors = 100'000'000;
    EXPECT_FALSE(alloc.Allocate(huge).has_value());
    EXPECT_EQ(alloc.TotalFreeSectors(), total);
  }
}

// Pumps `array` until `ops` submitted operations have completed kOk.
void RunOps(MimdRaid* array, int ops, uint64_t seed) {
  Rng rng(seed);
  int done = 0;
  int ok = 0;
  for (int i = 0; i < ops; ++i) {
    const uint32_t sectors = 1 + static_cast<uint32_t>(rng.UniformU64(16));
    const uint64_t lba =
        rng.UniformU64(array->backend().dataset_sectors() - sectors);
    const DiskOp op = rng.Bernoulli(0.6) ? DiskOp::kRead : DiskOp::kWrite;
    array->backend().Submit(op, lba, sectors, [&](const IoResult& r) {
      ++done;
      if (r.status == IoStatus::kOk) {
        ++ok;
      }
    });
  }
  uint64_t steps = 0;
  while (done < ops) {
    ASSERT_TRUE(array->sim().Step()) << "simulator ran dry";
    ASSERT_LT(++steps, kStepBudget) << "completions lost";
  }
  EXPECT_EQ(ok, ops);
  while (!array->backend().Idle() && array->sim().Step()) {
  }
}

TEST(VaEndToEndTest, MixedGenerationMultiTenantRunExportsPerVaStats) {
  // Fleet: 2 big drives + 6 small ones. Most-free placement ranks the big
  // drives first, so the 4-drive mirror tenant spans both generations — the
  // per-slot geometry path end to end.
  const FleetSpec fleet = MakeMixedFleet(8, 2);
  VirtualArrayAllocator alloc(fleet, 8, VaPlacement::kMostFree, /*seed=*/5);
  VaHost host(&alloc);

  MimdRaidOptions base;
  base.scheduler = SchedulerKind::kSatf;
  base.seed = 7;

  const VaAllocation mirror_va = *alloc.Allocate(MirrorRequest("tenantA"));
  const VaAllocation raid5_va = *alloc.Allocate(Raid5Request("tenantB"));
  const VaAllocation ec_va = *alloc.Allocate(ErasureRequest("tenantC"));

  // The mirror tenant really is mixed-generation.
  bool has_big = false;
  bool has_small = false;
  for (const uint32_t d : mirror_va.drives) {
    (fleet.GenerationFor(d) == 0 ? has_big : has_small) = true;
  }
  EXPECT_TRUE(has_big && has_small)
      << "placement did not mix generations; test fleet shape is off";

  TraceCollector collector_a;
  MimdRaidOptions base_a = base;
  base_a.collector = &collector_a;
  MimdRaid& tenant_a = host.Add(mirror_va, base_a);
  MimdRaid& tenant_b = host.Add(raid5_va, base);
  MimdRaid& tenant_c = host.Add(ec_va, base);
  // Materialize carried the erasure width through to the array.
  EXPECT_EQ(tenant_c.options().parity_shards, 2u);

  // Slots inherit the physical drives' generations: mixed geometry in one
  // array.
  EXPECT_EQ(tenant_a.options().fleet.slot_generation.size(), 4u);
  EXPECT_NE(tenant_a.disk(0).layout().num_data_sectors(),
            tenant_a.disk(3).layout().num_data_sectors());

  RunOps(&tenant_a, 120, 101);
  RunOps(&tenant_b, 120, 103);
  RunOps(&tenant_c, 120, 107);

  StatsRegistry registry;
  host.ExportAllStats(&registry);
  ExportVaTrace(collector_a, "tenantA", &registry);

  EXPECT_GT(registry.Get("va.tenantA.array.reads_completed"), 0.0);
  EXPECT_GT(registry.Get("va.tenantB.raid5.reads_completed"), 0.0);
  EXPECT_GT(registry.Get("va.tenantC.ec.reads_completed"), 0.0);
  EXPECT_TRUE(registry.Contains("va.tenantA.fault.spare_rejected"));
  EXPECT_TRUE(registry.Contains("va.tenantB.fault.spare_rejected"));
  // The trace namespace lands under the same tenant prefix.
  bool trace_key_seen = false;
  for (const auto& [name, value] : registry.values()) {
    if (name.rfind("va.tenantA.", 0) == 0 &&
        name.find("fault.") == std::string::npos &&
        name.find("array.") == std::string::npos) {
      trace_key_seen = true;
      (void)value;
      break;
    }
  }
  EXPECT_TRUE(trace_key_seen) << "no trace-collector keys under va.tenantA.";

  // Releasing every tenant restores the fleet.
  const uint64_t before_release = alloc.TotalFreeSectors();
  alloc.Release(mirror_va);
  alloc.Release(raid5_va);
  alloc.Release(ec_va);
  EXPECT_GT(alloc.TotalFreeSectors(), before_release);
  for (uint32_t d = 0; d < alloc.num_drives(); ++d) {
    EXPECT_EQ(alloc.DriveFreeSectors(d), alloc.DriveCapacitySectors(d));
  }
}

}  // namespace
}  // namespace mimdraid
