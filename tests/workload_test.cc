#include <gtest/gtest.h>

#include "src/workload/drivers.h"
#include "src/workload/synthetic.h"
#include "src/workload/trace.h"

namespace mimdraid {
namespace {

Trace SmallTrace() {
  SyntheticTraceParams p = CelloBaseParams(/*duration_s=*/3600, /*seed=*/3);
  p.dataset_sectors = 1'000'000;
  p.io_per_s = 20.0;
  return GenerateSyntheticTrace(p);
}

TEST(Synthetic, GeneratesRequestedRate) {
  const Trace t = SmallTrace();
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_NEAR(s.io_rate_per_s, 20.0, 2.0);
}

TEST(Synthetic, RecordsSortedInTime) {
  const Trace t = SmallTrace();
  for (size_t i = 1; i < t.records.size(); ++i) {
    EXPECT_LE(t.records[i - 1].time_us, t.records[i].time_us);
  }
}

TEST(Synthetic, RequestsWithinDataset) {
  const Trace t = SmallTrace();
  for (const TraceRecord& r : t.records) {
    EXPECT_LE(r.lba + r.sectors, t.dataset_sectors);
    EXPECT_GT(r.sectors, 0u);
  }
}

TEST(Synthetic, ReadFractionMatchesTarget) {
  const Trace t = SmallTrace();
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_NEAR(s.read_frac, 0.552, 0.03);
}

TEST(Synthetic, AsyncWritesQuantizedToSyncPeriod) {
  const Trace t = SmallTrace();
  int asyncs = 0;
  for (const TraceRecord& r : t.records) {
    if (r.is_async) {
      ++asyncs;
      EXPECT_EQ(r.time_us.us() % 30'000'000, 0);
    }
  }
  EXPECT_GT(asyncs, 0);
}

TEST(Synthetic, LocalityLandsNearTarget) {
  const Trace t = SmallTrace();
  const TraceStats s = ComputeTraceStats(t);
  // Target L = 4.14; the mixture model should land within ~35%.
  EXPECT_GT(s.seek_locality, 2.6);
  EXPECT_LT(s.seek_locality, 6.5);
}

TEST(Synthetic, TpccIsNearlyUniform) {
  SyntheticTraceParams p = TpccParams(/*duration_s=*/120, /*seed=*/5);
  p.dataset_sectors = 4'000'000;
  const Trace t = GenerateSyntheticTrace(p);
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_LT(s.seek_locality, 1.6);
  EXPECT_NEAR(s.io_rate_per_s, 500.0, 25.0);
  EXPECT_EQ(s.async_write_frac, 0.0);
}

TEST(Synthetic, TpccHasReadAfterWriteReuse) {
  SyntheticTraceParams p = TpccParams(/*duration_s=*/300, /*seed=*/6);
  p.dataset_sectors = 4'000'000;
  const Trace t = GenerateSyntheticTrace(p);
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_GT(s.read_after_write_frac, 0.05);
}

TEST(Synthetic, DeterministicForSeed) {
  const Trace a = SmallTrace();
  const Trace b = SmallTrace();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); i += 37) {
    EXPECT_EQ(a.records[i].lba, b.records[i].lba);
    EXPECT_EQ(a.records[i].time_us, b.records[i].time_us);
  }
}

TEST(TraceScaling, HalvesInterArrivalAtScaleTwo) {
  const Trace t = SmallTrace();
  const Trace fast = ScaleTraceRate(t, 2.0);
  ASSERT_EQ(fast.records.size(), t.records.size());
  EXPECT_NEAR(static_cast<double>(fast.DurationUs().us()),
              static_cast<double>(t.DurationUs().us()) / 2.0, 2.0);
}

TEST(TraceStats, ComputesDataSize) {
  Trace t;
  t.dataset_sectors = 2'000'000;  // ~1 GB
  t.records.push_back({SimTime(0), false, false, 0, 8});
  t.records.push_back({SimTime(1'000'000), true, false, 100, 8});
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_NEAR(s.data_size_gb, 1.024, 0.01);
  EXPECT_EQ(s.io_count, 2u);
  EXPECT_DOUBLE_EQ(s.read_frac, 0.5);
}

TEST(TraceStats, ReadAfterWriteDetectsRecentWrite) {
  Trace t;
  t.dataset_sectors = 10'000;
  t.records.push_back({SimTime(0), true, false, 64, 16});  // write
  t.records.push_back(
      {SimTime(1'000'000), false, false, 64, 16});  // read soon after
  t.records.push_back(
      {SimTime(2'000'000), false, false, 5'000, 16});  // unrelated
  const TraceStats s = ComputeTraceStats(t);
  EXPECT_NEAR(s.read_after_write_frac, 1.0 / 3.0, 1e-9);
}

// A trivially fast fake backend: completes everything after 1 ms.
SubmitFn FakeBackend(Simulator* sim) {
  return [sim](DiskOp, uint64_t, uint32_t, IoDoneFn done) {
    sim->ScheduleAfter(SimDuration(1000), [sim, done = std::move(done)]() {
      IoResult r;
      r.completion_us = sim->Now();
      done(r);
    });
  };
}

TEST(TracePlayer, PlaysAllRecords) {
  Simulator sim;
  Trace t = SmallTrace();
  t.records.resize(500);
  TracePlayerOptions options;
  options.warmup_ios = 10;
  TracePlayer player(&sim, &t, FakeBackend(&sim), options);
  const RunResult r = player.Run();
  EXPECT_EQ(r.completed, 500u);
  EXPECT_FALSE(r.saturated);
  // Latency of the fake backend is exactly 1 ms.
  EXPECT_NEAR(r.latency.MeanUs(), 1000.0, 1e-6);
}

TEST(TracePlayer, RateScaleCompressesElapsedTime) {
  Simulator sim1;
  Simulator sim2;
  Trace t = SmallTrace();
  t.records.resize(400);
  TracePlayer slow(&sim1, &t, FakeBackend(&sim1), {});
  TracePlayerOptions fast_options;
  fast_options.rate_scale = 4.0;
  TracePlayer fast(&sim2, &t, FakeBackend(&sim2), fast_options);
  const RunResult a = slow.Run();
  const RunResult b = fast.Run();
  EXPECT_NEAR(static_cast<double>(a.elapsed_us.us()) / 4.0,
              static_cast<double>(b.elapsed_us.us()),
              static_cast<double>(a.elapsed_us.us()) * 0.05);
}

TEST(TracePlayer, SaturationDetected) {
  Simulator sim;
  Trace t = SmallTrace();
  t.records.resize(300);
  // Backend that never completes anything within the run.
  SubmitFn black_hole = [&sim](DiskOp, uint64_t, uint32_t, IoDoneFn done) {
    sim.ScheduleAfter(SimDuration(100'000'000'000LL), [&sim, done = std::move(done)]() {
      IoResult r;
      r.completion_us = sim.Now();
      done(r);
    });
  };
  TracePlayerOptions options;
  options.max_outstanding = 50;
  TracePlayer player(&sim, &t, std::move(black_hole), options);
  const RunResult r = player.Run();
  EXPECT_TRUE(r.saturated);
}

TEST(TracePlayer, SaturationAccountsForEveryRecord) {
  Simulator sim;
  Trace t = SmallTrace();
  t.records.resize(300);
  SubmitFn black_hole = [&sim](DiskOp, uint64_t, uint32_t, IoDoneFn done) {
    sim.ScheduleAfter(SimDuration(100'000'000'000LL), [&sim, done = std::move(done)]() {
      IoResult r;
      r.completion_us = sim.Now();
      done(r);
    });
  };
  TracePlayerOptions options;
  options.max_outstanding = 50;
  TracePlayer player(&sim, &t, std::move(black_hole), options);
  const RunResult r = player.Run();
  ASSERT_TRUE(r.saturated);
  // Conservation: every trace record was either completed or counted as
  // dropped — the record that tripped the cap used to vanish uncounted.
  EXPECT_GE(r.dropped, 1u);
  EXPECT_EQ(r.completed + r.dropped, t.records.size());
}

TEST(TracePlayer, UnsaturatedRunDropsNothing) {
  Simulator sim;
  Trace t = SmallTrace();
  t.records.resize(200);
  TracePlayer player(&sim, &t, FakeBackend(&sim), {});
  const RunResult r = player.Run();
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.completed, t.records.size());
}

TEST(ClosedLoop, CompletesMeasureOps) {
  Simulator sim;
  ClosedLoopOptions options;
  options.outstanding = 4;
  options.dataset_sectors = 100'000;
  options.warmup_ops = 20;
  options.measure_ops = 200;
  ClosedLoopDriver driver(&sim, FakeBackend(&sim), options);
  const RunResult r = driver.Run();
  EXPECT_EQ(r.latency.count(), 200u);
  // 4 outstanding, 1 ms each -> 4000 IOPS.
  EXPECT_NEAR(r.iops, 4000.0, 100.0);
}

TEST(ClosedLoop, FootprintFractionRestrictsRange) {
  Simulator sim;
  uint64_t max_lba = 0;
  SubmitFn recorder = [&](DiskOp, uint64_t lba, uint32_t, IoDoneFn done) {
    max_lba = std::max(max_lba, lba);
    sim.ScheduleAfter(SimDuration(10), [&sim, done = std::move(done)]() {
      IoResult r;
      r.completion_us = sim.Now();
      done(r);
    });
  };
  ClosedLoopOptions options;
  options.outstanding = 2;
  options.dataset_sectors = 300'000;
  options.footprint_frac = 1.0 / 3.0;
  options.warmup_ops = 10;
  options.measure_ops = 500;
  ClosedLoopDriver driver(&sim, std::move(recorder), options);
  driver.Run();
  EXPECT_LE(max_lba, 100'000u);
  EXPECT_GT(max_lba, 50'000u);
}

}  // namespace
}  // namespace mimdraid
