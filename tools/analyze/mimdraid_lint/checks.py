"""The mimdraid lint checks.

Every check has an ID, a one-line rationale, and honors suppression comments
of the form

    // mdl-ok(MDL00X): <reason>

on the finding line or the line directly above it. A suppression without a
reason is itself reported (MDL000).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpp_ast import Function, Stmt, extract_functions, parse_block
from lexer import LexedFile, Token


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    check: str
    message: str


CHECKS = {
    "MDL001": "Completion callbacks (DoneFn-family) must be invoked or "
              "forwarded exactly once on every path; a dropped callback "
              "hangs the request, a double invoke corrupts caller state.",
    "MDL002": "Results of Simulator::Cancel and [[nodiscard]] I/O APIs "
              "(Lookup, AllocEntryId, EnqueueCommand) must not be silently "
              "dropped; a swallowed status hides lost events and data loss.",
    "MDL003": "Microsecond quantities (*_us) must not mix with bare numeric "
              "literals in arithmetic or comparisons; wrap literals in "
              "SimTime()/SimDuration() so the dimension stays visible.",
    "MDL004": "No function-local static mutable state in bench/ or src/: "
              "the parallel sweep engine re-enters these paths and hidden "
              "cross-run state breaks run-to-run reproducibility.",
    "MDL005": "Observer objects (TraceCollector, InvariantAuditor, "
              "StatsRegistry) are borrowed, never owned: storing them in "
              "owning smart pointers or new-ing them inverts the documented "
              "lifetime contract.",
    "MDL006": "Binding a container's .top() by value copies the whole "
              "element — for event/command queues that means deep-copying "
              "the stored callback closure on every pop. Bind a const "
              "reference (or move the element out) instead.",
    "MDL007": "Reading one representative disk's parameters (disks_[0], "
              ".front(), a single shared DriveParams member) assumes an "
              "identical-disk fleet; per-slot parameters now come from "
              "FleetSpec, so index by the slot actually involved.",
}

# MDL001: parameter types that denote a completion callback.
_CALLBACK_TYPES = {"DoneFn", "IoDoneFn", "CommandDoneFn"}
# MDL002: must-use call names (Simulator::Cancel + [[nodiscard]] APIs).
_MUST_USE_CALLS = {"Cancel", "Lookup", "AllocEntryId", "EnqueueCommand"}
# MDL003: operators where a raw literal next to *_us loses the dimension.
_US_OPS = {"+", "-", "<", ">", "<=", ">=", "==", "!=", "+=", "-="}
# MDL005: borrowed observer types.
_OBSERVER_TYPES = {"TraceCollector", "InvariantAuditor", "StatsRegistry"}

_SUPPRESS_RE = re.compile(r"mdl-ok\((MDL\d{3})\)\s*:\s*(\S.*)?")


def _suppressed(lf: LexedFile, line: int, check: str) -> bool:
    for probe in (line, line - 1):
        for m in _SUPPRESS_RE.finditer(lf.comment_on(probe)):
            if m.group(1) == check and m.group(2):
                return True
    return False


def check_suppression_format(lf: LexedFile) -> list[Finding]:
    """MDL000: every mdl-ok must name a check and give a reason."""
    out = []
    for line, bodies in sorted(lf.comments.items()):
        for body in bodies:
            if "mdl-ok" not in body:
                continue
            m = _SUPPRESS_RE.search(body)
            if not m or not m.group(2):
                out.append(Finding(
                    lf.path, line, "MDL000",
                    "malformed suppression: use "
                    "`mdl-ok(MDLxxx): reason`"))
    return out


# --- MDL001 ---------------------------------------------------------------


def _param_callbacks(params: list[Token]) -> list[str]:
    """Names of parameters whose type is a completion-callback type."""
    names: list[str] = []
    depth = 0
    group: list[Token] = []
    groups: list[list[Token]] = []
    for t in params:
        if t.kind == "punct" and t.text in "(<[{":
            depth += 1
        elif t.kind == "punct" and t.text in ")>]}":
            depth -= 1
        elif t.kind == "punct" and t.text == "," and depth == 0:
            groups.append(group)
            group = []
            continue
        group.append(t)
    if group:
        groups.append(group)
    for g in groups:
        type_hit = any(t.kind == "id" and t.text in _CALLBACK_TYPES
                       for t in g)
        if not type_hit:
            continue
        ids = [t.text for t in g if t.kind == "id"]
        if ids and ids[-1] not in _CALLBACK_TYPES:
            names.append(ids[-1])
    return names


def _mentions(stmts: list[Stmt], name: str) -> bool:
    for s in stmts:
        if any(t.kind == "id" and t.text == name for t in s.tokens):
            return True
        if _mentions(s.then, name) or _mentions(s.els, name):
            return True
    return False


def _stmt_mentions(s: Stmt, name: str) -> bool:
    return (any(t.kind == "id" and t.text == name for t in s.tokens)
            or _mentions(s.then, name) or _mentions(s.els, name))


def _direct_invoke(s: Stmt, name: str) -> bool:
    """Statement is a plain `name(...)` / `std::move(name)(...)` call."""
    toks = s.tokens
    if len(toks) >= 2 and toks[0].kind == "id" and toks[0].text == name \
            and toks[1].kind == "punct" and toks[1].text == "(":
        return True
    texts = [t.text for t in toks[:8]]
    if texts[:6] == ["std", "::", "move", "(", name, ")"]:
        return True
    return False


def _walk_paths(stmts: list[Stmt], name: str, used: bool,
                out: list[tuple[int, str]]) -> bool:
    """Scan a statement list; returns `used` at fallthrough.

    Conservative for false positives: any mention of the callback (call,
    move, capture, pass-through) counts as use. Flags (a) a `return` reached
    with the callback provably untouched on every path so far, and (b) two
    direct sequential invocations in one straight-line block.
    """
    invoked_in_block = False
    for s in stmts:
        if s.kind == "return":
            ret_mentions = any(t.kind == "id" and t.text == name
                               for t in s.tokens)
            if not used and not ret_mentions:
                out.append((s.line,
                            f"'{name}' can be dropped: this return is "
                            f"reachable with the callback never invoked "
                            f"or forwarded"))
            return True  # path ends; report as used to avoid cascades
        if s.kind in {"if", "loop", "switch", "block"}:
            _walk_paths(s.then, name, used or _stmt_hits_cond(s, name), out)
            if s.els:
                _walk_paths(s.els, name, used or _stmt_hits_cond(s, name),
                            out)
            if _stmt_mentions(s, name):
                used = True
            invoked_in_block = False
            continue
        if _direct_invoke(s, name):
            if invoked_in_block:
                out.append((s.line,
                            f"'{name}' is invoked twice on the same "
                            f"straight-line path"))
            invoked_in_block = True
            used = True
            continue
        if any(t.kind == "id" and t.text == name for t in s.tokens):
            used = True
    return used


def _stmt_hits_cond(s: Stmt, name: str) -> bool:
    return any(t.kind == "id" and t.text == name for t in s.tokens)


def check_callback_paths(lf: LexedFile) -> list[Finding]:
    out: list[Finding] = []
    for fn in extract_functions(lf):
        cbs = _param_callbacks(fn.params)
        if not cbs:
            continue
        stmts = parse_block(fn.body)
        for name in cbs:
            hits: list[tuple[int, str]] = []
            used = _walk_paths(stmts, name, False, hits)
            if not used and not _mentions(stmts, name) and fn.body:
                hits.append((fn.line,
                             f"'{name}' is never invoked or forwarded in "
                             f"'{fn.name or '<lambda>'}'"))
            for line, msg in hits:
                if not _suppressed(lf, line, "MDL001"):
                    out.append(Finding(lf.path, line, "MDL001", msg))
    return out


# --- MDL002 ---------------------------------------------------------------


def check_dropped_status(lf: LexedFile) -> list[Finding]:
    out: list[Finding] = []
    toks = lf.tokens
    n = len(toks)
    i = 0
    while i < n:
        # Statement start: beginning of file or after ; { }
        if i > 0 and not (toks[i - 1].kind == "punct"
                          and toks[i - 1].text in ";{}"):
            i += 1
            continue
        j = i
        voided = False
        if j + 2 < n and toks[j].text == "(" and toks[j + 1].text == "void" \
                and toks[j + 2].text == ")":
            voided = True
            j += 3
        # Member chain: id ((. | -> | ::) id)*
        if not (j < n and toks[j].kind == "id"):
            i += 1
            continue
        last_name = toks[j].text
        k = j + 1
        while k + 1 < n and toks[k].kind == "punct" \
                and toks[k].text in {".", "->", "::"} \
                and toks[k + 1].kind == "id":
            last_name = toks[k + 1].text
            k += 2
        if last_name not in _MUST_USE_CALLS or not (
                k < n and toks[k].kind == "punct" and toks[k].text == "("):
            i += 1
            continue
        # Skip the argument list; require `;` right after.
        depth = 0
        m = k
        while m < n:
            if toks[m].kind == "punct":
                if toks[m].text == "(":
                    depth += 1
                elif toks[m].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
            m += 1
        if not (m + 1 < n and toks[m + 1].kind == "punct"
                and toks[m + 1].text == ";"):
            i += 1
            continue
        line = toks[j].line
        if voided:
            if not _suppressed(lf, line, "MDL002"):
                out.append(Finding(
                    lf.path, line, "MDL002",
                    f"result of '{last_name}' discarded via (void) without "
                    f"an mdl-ok(MDL002) rationale"))
        else:
            if not _suppressed(lf, line, "MDL002"):
                out.append(Finding(
                    lf.path, line, "MDL002",
                    f"result of '{last_name}' is silently dropped"))
        i = m + 2
    return out


# --- MDL003 ---------------------------------------------------------------


def _is_bare_int(t: Token) -> bool:
    if t.kind != "num":
        return False
    body = t.text.replace("'", "")
    if "." in body or "x" in body.lower() or "e" in body.lower():
        return False
    digits = body.rstrip("uUlL")
    return digits.isdigit() and digits != "0"


def check_unit_mixing(lf: LexedFile) -> list[Finding]:
    out: list[Finding] = []
    toks = lf.tokens
    for i in range(len(toks) - 2):
        a, op, b = toks[i], toks[i + 1], toks[i + 2]
        if not (op.kind == "punct" and op.text in _US_OPS):
            continue
        hit = None
        if a.kind == "id" and a.text.endswith("_us") and _is_bare_int(b):
            hit = (a.text, b.text)
        elif b.kind == "id" and b.text.endswith("_us") and _is_bare_int(a):
            hit = (b.text, a.text)
        if hit and not _suppressed(lf, op.line, "MDL003"):
            out.append(Finding(
                lf.path, op.line, "MDL003",
                f"'{hit[0]}' {op.text} bare literal {hit[1]}: wrap the "
                f"literal in SimTime()/SimDuration() to keep the unit"))
    return out


# --- MDL004 ---------------------------------------------------------------


def check_local_static(lf: LexedFile) -> list[Finding]:
    if not (lf.path.startswith("bench/") or lf.path.startswith("src/")
            or "lint_fixture" in lf.path):
        return []
    out: list[Finding] = []
    seen: set[int] = set()
    for fn in extract_functions(lf):
        for i, t in enumerate(fn.body):
            if not (t.kind == "id" and t.text == "static"):
                continue
            nxt = fn.body[i + 1] if i + 1 < len(fn.body) else None
            if nxt is not None and nxt.kind == "id" \
                    and nxt.text in {"const", "constexpr", "assert"}:
                continue
            if t.line in seen or _suppressed(lf, t.line, "MDL004"):
                continue
            seen.add(t.line)
            out.append(Finding(
                lf.path, t.line, "MDL004",
                "function-local static mutable state: hoist it into the "
                "fixture/rig object so parallel sweeps stay independent"))
    return out


# --- MDL005 ---------------------------------------------------------------


def check_owned_observers(lf: LexedFile) -> list[Finding]:
    if lf.path.startswith("src/obs/"):
        return []
    out: list[Finding] = []
    toks = lf.tokens
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in {"unique_ptr", "shared_ptr"}:
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                k = j + 1
                if k < len(toks) and toks[k].text == "mimdraid":
                    k += 2  # skip `mimdraid ::`
                if k < len(toks) and toks[k].kind == "id" \
                        and toks[k].text in _OBSERVER_TYPES \
                        and not _suppressed(lf, t.line, "MDL005"):
                    out.append(Finding(
                        lf.path, t.line, "MDL005",
                        f"'{toks[k].text}' held in an owning smart pointer; "
                        f"observers are borrowed via raw pointer"))
        if t.kind == "id" and t.text == "new":
            k = i + 1
            if k < len(toks) and toks[k].text == "mimdraid":
                k += 2
            if k < len(toks) and toks[k].kind == "id" \
                    and toks[k].text in _OBSERVER_TYPES \
                    and not _suppressed(lf, t.line, "MDL005"):
                out.append(Finding(
                    lf.path, t.line, "MDL005",
                    f"'{toks[k].text}' heap-allocated with new; observers "
                    f"are created by the harness and borrowed"))
    return out


# --- MDL006 ---------------------------------------------------------------


def check_top_copy(lf: LexedFile) -> list[Finding]:
    """MDL006: `T x = q.top()` copies the queue head by value.

    The motivating bug: the event loop did `Event ev = heap_.top()`, copying
    a std::function closure (and its heap allocation) on every single event
    pop. Only initializations/assignments without a `&` on the left-hand
    side are flagged; `const auto& e = q.top()` and in-place uses
    (`q.top().at <= deadline`) pass. Scoped to src/ like MDL004 — tests may
    copy freely.
    """
    if not (lf.path.startswith("src/") or "lint_fixture" in lf.path):
        return []
    out: list[Finding] = []
    toks = lf.tokens
    for i, t in enumerate(toks):
        if not (t.kind == "id" and t.text == "top"):
            continue
        if i + 2 >= len(toks) or toks[i + 1].text != "("                 or toks[i + 2].text != ")":
            continue
        if i == 0 or toks[i - 1].text not in {".", "->"}:
            continue
        # Walk back to the statement start; remember the nearest plain `=`.
        j = i - 1
        start = 0
        eq = None
        while j >= 0:
            txt = toks[j].text
            if txt in {";", "{", "}"}:
                start = j + 1
                break
            if txt == "=" and eq is None:
                eq = j
            j -= 1
        if eq is None:
            continue  # used in place, not bound to a name
        lhs = toks[start:eq]
        if not lhs or any(t2.text == "&" for t2 in lhs):
            continue  # reference binding is the recommended form
        if any(t2.text in {"return", "("} for t2 in lhs):
            continue  # not a simple declaration/assignment target
        if _suppressed(lf, t.line, "MDL006"):
            continue
        out.append(Finding(
            lf.path, t.line, "MDL006",
            "queue head copied by value: bind `const auto&` (or move the "
            "element out) instead of copying .top() — a by-value bind "
            "deep-copies any stored callback closure"))
    return out


# --- MDL007 ---------------------------------------------------------------


_DISKISH_RE = re.compile(r"(?i)(disk|drive)")
# Exact type names whose single-member form hides per-slot variation.
_SHARED_PARAM_TYPES = {"DriveParams", "DiskParams"}


def check_representative_disk(lf: LexedFile) -> list[Finding]:
    """MDL007: representative-disk reads in heterogeneous-fleet code.

    The motivating refactor: MimdRaid used `disks_[0]->layout()` to size and
    place data for *every* column, which silently mis-models a fleet with
    mixed drive generations. Flagged (in src/ only — tests may pin disk 0
    deliberately):

      * a disk/drive-named container indexed with literal 0, followed by
        member access (`disks_[0]->geometry()`);
      * `.front()` on such a container, followed by member access;
      * a class storing one shared `DriveParams`/`DiskParams` member
        (`DriveParams params_;`) instead of per-slot parameters.

    Indexing by a variable (`disks_[slot]`) and whole-container iteration
    pass; `ModelDiskParams` (the analytic aggregate) is a distinct type and
    is not matched.
    """
    if not (lf.path.startswith("src/") or "lint_fixture" in lf.path):
        return []
    out: list[Finding] = []
    toks = lf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        # Shared parameter member: `DriveParams name_ ;`
        if t.text in _SHARED_PARAM_TYPES and i + 2 < n \
                and toks[i + 1].kind == "id" \
                and toks[i + 1].text.endswith("_") \
                and toks[i + 2].text == ";" \
                and not _suppressed(lf, t.line, "MDL007"):
            out.append(Finding(
                lf.path, t.line, "MDL007",
                f"single shared '{t.text}' member "
                f"'{toks[i + 1].text}': per-slot parameters live in "
                f"FleetSpec — store the generation per slot"))
            continue
        if not _DISKISH_RE.search(t.text):
            continue
        # `disks_[0]` followed by member access.
        if i + 4 < n and toks[i + 1].text == "[" \
                and toks[i + 2].kind == "num" \
                and toks[i + 2].text.replace("'", "").rstrip("uUlL") == "0" \
                and toks[i + 3].text == "]" \
                and toks[i + 4].text in {".", "->"}:
            if not _suppressed(lf, t.line, "MDL007"):
                out.append(Finding(
                    lf.path, t.line, "MDL007",
                    f"'{t.text}[0]' treated as a representative disk; "
                    f"fleets are heterogeneous — use the slot's own "
                    f"parameters"))
            continue
        # `disks_.front().xxx` / `disks_->front()->xxx`.
        if i + 5 < n and toks[i + 1].text in {".", "->"} \
                and toks[i + 2].kind == "id" and toks[i + 2].text == "front" \
                and toks[i + 3].text == "(" and toks[i + 4].text == ")" \
                and toks[i + 5].text in {".", "->"}:
            if not _suppressed(lf, t.line, "MDL007"):
                out.append(Finding(
                    lf.path, t.line, "MDL007",
                    f"'{t.text}.front()' treated as a representative disk; "
                    f"fleets are heterogeneous — use the slot's own "
                    f"parameters"))
    return out


ALL_CHECKS = [
    check_suppression_format,
    check_callback_paths,
    check_dropped_status,
    check_unit_mixing,
    check_local_static,
    check_owned_observers,
    check_top_copy,
    check_representative_disk,
]


def run_checks(lf: LexedFile) -> list[Finding]:
    out: list[Finding] = []
    for chk in ALL_CHECKS:
        out.extend(chk(lf))
    out.sort(key=lambda f: (f.path, f.line, f.check))
    return out
