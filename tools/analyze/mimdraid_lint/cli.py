"""Command-line driver for mimdraid_lint.

Usage:
    python3 tools/analyze/mimdraid_lint [--json] [--list-checks] PATH...

Paths may be files or directories (searched recursively for .h/.cc/.cpp).
Fixture trees (tests/lint_fixture, tests/negative_compile) are skipped when
reached through a directory walk, but lint them directly by naming them on
the command line. Exit status is 1 when any finding is reported, else 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from checks import CHECKS, Finding, run_checks
from lexer import lex

_EXTS = {".h", ".cc", ".cpp"}
_WALK_EXCLUDES = {"lint_fixture", "negative_compile", "build",
                  "third_party", ".git"}


def _collect(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = sorted(d for d in dirs if d not in _WALK_EXCLUDES)
            for name in sorted(names):
                if os.path.splitext(name)[1] in _EXTS:
                    files.append(os.path.join(root, name))
    return files


def _relpath(p: str) -> str:
    rel = os.path.relpath(p)
    return rel if not rel.startswith("..") else p


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="mimdraid_lint", description=__doc__)
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array")
    ap.add_argument("--list-checks", action="store_true",
                    help="print check IDs and rationales, then exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        for check_id in sorted(CHECKS):
            print(f"{check_id}: {CHECKS[check_id]}")
        return 0
    if not args.paths:
        ap.error("no paths given")

    findings: list[Finding] = []
    for path in _collect(args.paths):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        findings.extend(run_checks(lex(_relpath(path), text)))
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.json:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: {f.check}: {f.message}")
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
