"""Lightweight structural AST over the token stream.

Two layers:

  * function extraction — every `(...) ... { ... }` unit (free function,
    method, or lambda) with its parameter tokens and body token range;
  * statement trees — a function body parsed into nested Block/If/Loop/
    Return/Expr statements, enough structure for the path-sensitive
    callback-drop check (MDL001) without a real C++ front end.

The parser is deliberately forgiving: anything it cannot classify becomes an
opaque Expr statement, which the checks treat conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from lexer import LexedFile, Token


@dataclass
class Function:
    name: str                 # "" for lambdas
    params: list[Token]       # tokens between the parameter parens
    body: list[Token]         # tokens between the body braces (exclusive)
    line: int                 # line of the opening body brace
    is_lambda: bool


def _match_forward(tokens: list[Token], i: int, open_p: str,
                   close_p: str) -> int:
    """Index of the matching close token for the open token at `i`."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == open_p:
                depth += 1
            elif t.text == close_p:
                depth -= 1
                if depth == 0:
                    return j
        j += 1
    return len(tokens) - 1


_BODY_QUALIFIERS = {
    "const", "noexcept", "override", "final", "mutable", "->", "&", "&&",
}
# `) {` preceded by one of these is a control statement, not a function.
_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else"}


def extract_functions(lf: LexedFile) -> list[Function]:
    """All function-like units: name(args) {...} and lambdas [..](..){...}."""
    tokens = lf.tokens
    out: list[Function] = []
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if not (t.kind == "punct" and t.text == "("):
            i += 1
            continue
        close = _match_forward(tokens, i, "(", ")")
        # Scan past trailing qualifiers / trailing-return tokens to `{`.
        j = close + 1
        while j < len(tokens):
            tj = tokens[j]
            if tj.kind == "id" and tj.text in _BODY_QUALIFIERS:
                j += 1
                continue
            if tj.kind == "punct" and tj.text in _BODY_QUALIFIERS:
                j += 1
                continue
            if tj.kind == "id" or (tj.kind == "punct" and tj.text == "::"):
                # trailing return type tokens after ->
                if j > close + 1 and tokens[j - 1].kind == "punct" \
                        and tokens[j - 1].text in {"->", "::"}:
                    j += 1
                    continue
                if j > close + 1 and tokens[j - 1].kind == "id":
                    j += 1
                    continue
            break
        if not (j < len(tokens) and tokens[j].kind == "punct"
                and tokens[j].text == "{"):
            i += 1
            continue
        # Classify the head: lambda, control statement, or named function.
        name = ""
        is_lambda = False
        k = i - 1
        if k >= 0 and tokens[k].kind == "punct" and tokens[k].text == "]":
            is_lambda = True
        elif k >= 0 and tokens[k].kind == "id":
            if tokens[k].text in _CONTROL_KEYWORDS:
                i += 1
                continue
            name = tokens[k].text
        else:
            i += 1
            continue
        body_close = _match_forward(tokens, j, "{", "}")
        out.append(Function(
            name=name,
            params=tokens[i + 1:close],
            body=tokens[j + 1:body_close],
            line=tokens[j].line,
            is_lambda=is_lambda,
        ))
        i = close + 1  # nested lambdas inside the body are found too
    return out


# --- Statement tree -------------------------------------------------------


@dataclass
class Stmt:
    kind: str                       # "expr" | "return" | "if" | "loop" |
                                    # "block" | "switch"
    tokens: list[Token] = field(default_factory=list)  # head/expr tokens
    line: int = 0
    then: list["Stmt"] = field(default_factory=list)
    els: list["Stmt"] = field(default_factory=list)


def parse_block(tokens: list[Token]) -> list[Stmt]:
    """Parse a brace-less token run (a function/block body) into statements."""
    stmts: list[Stmt] = []
    i = 0
    n = len(tokens)

    def subblock(j: int) -> tuple[list[Stmt], int]:
        """Parse either `{...}` or a single statement starting at j."""
        if j < n and tokens[j].kind == "punct" and tokens[j].text == "{":
            close = _match_forward(tokens, j, "{", "}")
            return parse_block(tokens[j + 1:close]), close + 1
        # single statement: up to `;` (depth-0)
        k = j
        depth = 0
        while k < n:
            t = tokens[k]
            if t.kind == "punct":
                if t.text in "([{":
                    depth += 1
                elif t.text in ")]}":
                    depth -= 1
                elif t.text == ";" and depth == 0:
                    break
            k += 1
        return parse_block(tokens[j:k + 1]), k + 1

    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == "{":
            close = _match_forward(tokens, i, "{", "}")
            stmts.append(Stmt("block", line=t.line,
                              then=parse_block(tokens[i + 1:close])))
            i = close + 1
            continue
        if t.kind == "id" and t.text in {"if", "while", "for", "switch"}:
            kind = "if" if t.text == "if" else \
                   ("switch" if t.text == "switch" else "loop")
            j = i + 1
            if j < n and tokens[j].kind == "id" and tokens[j].text == "constexpr":
                j += 1
            if j < n and tokens[j].kind == "punct" and tokens[j].text == "(":
                cond_close = _match_forward(tokens, j, "(", ")")
                head = tokens[j + 1:cond_close]
                body, nxt = subblock(cond_close + 1)
                st = Stmt(kind, tokens=head, line=t.line, then=body)
                # else / else-if chain
                if kind == "if" and nxt < n and tokens[nxt].kind == "id" \
                        and tokens[nxt].text == "else":
                    els, nxt2 = subblock(nxt + 1)
                    st.els = els
                    nxt = nxt2
                stmts.append(st)
                i = nxt
                continue
            i = j
            continue
        if t.kind == "id" and t.text == "do":
            body, nxt = subblock(i + 1)
            # consume `while (...);`
            while nxt < n and not (tokens[nxt].kind == "punct"
                                   and tokens[nxt].text == ";"):
                nxt += 1
            stmts.append(Stmt("loop", line=t.line, then=body))
            i = nxt + 1
            continue
        if t.kind == "id" and t.text == "return":
            k = i
            depth = 0
            while k < n:
                tk = tokens[k]
                if tk.kind == "punct":
                    if tk.text in "([{":
                        depth += 1
                    elif tk.text in ")]}":
                        depth -= 1
                    elif tk.text == ";" and depth == 0:
                        break
                k += 1
            stmts.append(Stmt("return", tokens=tokens[i + 1:k], line=t.line))
            i = k + 1
            continue
        # plain statement to `;`
        k = i
        depth = 0
        while k < n:
            tk = tokens[k]
            if tk.kind == "punct":
                if tk.text in "([{":
                    depth += 1
                elif tk.text in ")]}":
                    depth -= 1
                elif tk.text == ";" and depth == 0:
                    break
            k += 1
        stmts.append(Stmt("expr", tokens=tokens[i:k], line=t.line))
        i = k + 1
    return stmts
