"""Tokenizer for the subset of C++ the mimdraid lint checks care about.

Produces a stream of (kind, text, line) tokens with comments and string
literals stripped out of the stream but comments preserved per-line so the
suppression scanner (`// mdl-ok(MDLxxx): reason`) can find them. Preprocessor
directives are dropped whole; the checks operate on the post-lex token stream
only, never on raw source text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "str" | "char" | "punct"
    text: str
    line: int


# Multi-character operators first so the scanner is longest-match.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", "<", ">", ";", ",", ".", "+", "-", "*",
    "/", "%", "=", "&", "|", "^", "!", "~", "?", ":", "#",
]
_PUNCT_RE = re.compile("|".join(re.escape(p) for p in _PUNCTS))
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# C++14 digit separators (1'000'000), hex, suffixes (u, LL, f...).
_NUM_RE = re.compile(
    r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9']*(?:\.[0-9']*)?(?:[eE][+-]?[0-9]+)?)"
    r"[a-zA-Z]*"
)


class LexedFile:
    """Token stream plus per-line comment text for one source file."""

    def __init__(self, path: str, tokens: list[Token],
                 comments: dict[int, list[str]]):
        self.path = path
        self.tokens = tokens
        self.comments = comments  # line -> comment bodies on that line

    def comment_on(self, line: int) -> str:
        return " ".join(self.comments.get(line, []))


def lex(path: str, text: str) -> LexedFile:
    tokens: list[Token] = []
    comments: dict[int, list[str]] = {}
    i = 0
    line = 1
    n = len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r":
            i += 1
            continue
        # Preprocessor directive: swallow to end of line (with continuations).
        if c == "#" and at_line_start:
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                i += 1
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.setdefault(line, []).append(text[i + 2:j].strip())
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            body = text[i + 2:j]
            comments.setdefault(line, []).append(body.strip())
            line += body.count("\n")
            i = j + 2
            continue
        # String / char literals (raw strings handled crudely but safely).
        if c == '"' or (c == "R" and text[i:i + 2] == 'R"'):
            if c == "R":
                m = re.match(r'R"([^(]*)\(', text[i:])
                if m:
                    delim = ")" + m.group(1) + '"'
                    j = text.find(delim, i + m.end())
                    if j < 0:
                        j = n
                    line += text.count("\n", i, j)
                    tokens.append(Token("str", "<rawstr>", line))
                    i = j + len(delim)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("str", "<str>", line))
            i = j + 1
            continue
        if c == "'" and not (tokens and tokens[-1].kind == "num"):
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("char", "<char>", line))
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token("id", m.group(0), line))
            i = m.end()
            continue
        m = _NUM_RE.match(text, i)
        if m:
            tokens.append(Token("num", m.group(0), line))
            i = m.end()
            continue
        m = _PUNCT_RE.match(text, i)
        if m:
            tokens.append(Token("punct", m.group(0), line))
            i = m.end()
            continue
        i += 1  # unknown byte: skip
    return LexedFile(path, tokens, comments)
