#!/bin/sh
# Compares a fresh bench_micro_core run against the committed baseline
# (BENCH_sim.json) and fails if any benchmark regressed by more than the
# threshold (default 15%). Used by the `perf` CI job as a coarse tripwire
# against accidental hot-path regressions; benchmarks present on only one
# side (added or retired) are reported but never fail the check.
#
# Usage: tools/check_bench.sh [build-dir] [baseline.json] [threshold-pct]
#        (defaults: build BENCH_sim.json 15)
set -e
build_dir="${1:-build}"
baseline_name="${2:-BENCH_sim.json}"
threshold="${3:-15}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo/$baseline_name"
bench="$repo/$build_dir/bench/bench_micro_core"

if [ ! -f "$baseline" ]; then
  echo "check_bench: no baseline at $baseline" >&2
  exit 1
fi
if [ ! -x "$bench" ]; then
  echo "building bench_micro_core..." >&2
  cmake --build "$repo/$build_dir" --target bench_micro_core -j "$(nproc)"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# Repetitions damp scheduler jitter on shared CI runners; compare medians.
"$bench" --benchmark_format=json --benchmark_out="$raw" \
    --benchmark_out_format=json --benchmark_repetitions=3 >&2

python3 - "$raw" "$baseline" "$threshold" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    raw = json.load(f)
with open(sys.argv[2]) as f:
    base = json.load(f)
threshold = float(sys.argv[3])

# Median-of-repetitions where present, plain runs otherwise. BigO/RMS
# aggregates are fit parameters, not timings; skip them.
current = {}
for b in raw.get("benchmarks", []):
    name = b["name"]
    if b.get("run_type") == "aggregate":
        if b.get("aggregate_name") != "median":
            continue
        name = name.rsplit("_median", 1)[0]
    current[name] = b.get("cpu_time", 0.0)

failures = []
for entry in base.get("benchmarks", []):
    name = entry["name"]
    if "BigO" in name or "RMS" in name:
        continue
    if name not in current:
        print(f"  [gone] {name} (in baseline, not in this run)")
        continue
    old = entry["cpu_time_ns"]
    new = current[name]
    delta = 100.0 * (new - old) / old if old > 0 else 0.0
    marker = "REGRESSED" if delta > threshold else "ok"
    print(f"  [{marker}] {name}: {old:.1f} -> {new:.1f} ns ({delta:+.1f}%)")
    if delta > threshold:
        failures.append(name)

for name in sorted(set(current) - {e["name"] for e in base.get("benchmarks", [])}):
    if "BigO" not in name and "RMS" not in name:
        print(f"  [new] {name} (not in baseline)")

if failures:
    print(f"check_bench: {len(failures)} benchmark(s) regressed more than "
          f"{threshold:.0f}% vs {sys.argv[2]}", file=sys.stderr)
    sys.exit(1)
print("check_bench: all benchmarks within threshold")
EOF
