#!/bin/sh
# Reliability smoke gate for CI.
#
# Runs the fleet-lifetime Monte Carlo bench (bench_reliability) twice —
# serially and with a worker pool — requires the two outputs byte-identical
# (the PointSeed-per-trial design makes the estimate independent of the job
# count), and pins the headline estimates: the seeds are fixed, so these
# numbers are exact, not tolerances. A drift here means the fleet
# simulator's draws, event ordering, or estimators changed.
#
# Usage: check_reliability.sh <path-to-bench_reliability> [summary-out]
set -eu

BENCH="${1:?usage: check_reliability.sh <bench_reliability> [summary-out]}"
OUT="${2:-reliability-summary.txt}"

"$BENCH" --jobs 2 > "$OUT"
"$BENCH" --jobs 1 > "$OUT.serial"
if ! diff -u "$OUT.serial" "$OUT"; then
  echo "FAIL: bench_reliability output depends on the job count" >&2
  exit 1
fi
rm -f "$OUT.serial"

# Exact pinned estimates (seeds fixed in bench_reliability.cc).
require() {
  if ! grep -Fq "$1" "$OUT"; then
    echo "FAIL: expected pinned line missing: $1" >&2
    echo "--- actual output ---" >&2
    cat "$OUT" >&2
    exit 1
  fi
}

# RAID-5 group: simulated MTTDL CI brackets the Markov closed form (83.2 yr).
require "74.1 [56.8, 98.6]"
require "83.2"
# Mirror pair: wide CI (few losses) but bracketing its closed form too.
require "4e+03 [719, 3.06e+05]"
# Double-fault 6+2: no whole-array loss observed in 4000 trial-years.
require "inf [1.09e+03, inf]"
# Scrub-policy table: sweep and LSE-cleared counters are exact.
require "fixed-period   208400   197881"
require "staggered      1252000  198149"
require "util-gated     83200    183666"
# Scrub off: zero sweeps, an order of magnitude more sector losses.
require "16.4213"

echo "PASS: reliability frontier pinned estimates reproduced ($OUT)"
