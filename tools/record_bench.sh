#!/bin/sh
# Records the bench_micro_core numbers into a tracked JSON baseline at the
# repo root (default BENCH_sim.json).
#
# The file is a tracked performance baseline: re-run this script on the
# reference machine after a change that is expected to move the hot paths
# (layout mapping, access planning, scheduler picks, event engine) and commit
# the diff so reviewers see the before/after. Numbers from other machines are
# for local comparison only — don't commit them.
#
# Usage: tools/record_bench.sh [build-dir] [output.json]
#        (defaults: build BENCH_sim.json)
set -e
build_dir="${1:-build}"
out_name="${2:-BENCH_sim.json}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
bench="$repo/$build_dir/bench/bench_micro_core"

if [ ! -x "$bench" ]; then
  echo "building bench_micro_core..." >&2
  cmake --build "$repo/$build_dir" --target bench_micro_core -j "$(nproc)"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
"$bench" --benchmark_format=json --benchmark_out="$raw" \
    --benchmark_out_format=json >&2

python3 - "$raw" "$repo/$out_name" <<'EOF'
import json
import platform
import sys

with open(sys.argv[1]) as f:
    raw = json.load(f)

ctx = raw.get("context", {})
benchmarks = []
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "BigO":
        continue
    benchmarks.append({
        "name": b["name"],
        "real_time_ns": round(b.get("real_time", 0.0), 2),
        "cpu_time_ns": round(b.get("cpu_time", 0.0), 2),
        "iterations": b.get("iterations", 0),
    })

out = {
    "bench": "bench_micro_core",
    "machine": {
        "host_arch": platform.machine(),
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "cpu_scaling_enabled": ctx.get("cpu_scaling_enabled"),
        "library_build_type": ctx.get("library_build_type"),
    },
    "benchmarks": benchmarks,
}
with open(sys.argv[2], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(benchmarks)} entries)")
EOF
