#!/usr/bin/env bash
# Runs clang-tidy over the library sources (src/**/*.cc) using the repo's
# .clang-tidy configuration and a compile_commands.json database.
#
# Usage:
#   tools/run_tidy.sh                 # whole of src/
#   tools/run_tidy.sh src/sim/...    # explicit file list
#   tools/run_tidy.sh --changed      # only files changed vs origin/main (CI)
#
# Environment:
#   BUILD_DIR         build tree with compile_commands.json (default: build)
#   CLANG_TIDY        clang-tidy binary to use (default: autodetect)
#   RUN_TIDY_STRICT   when 1, a missing clang-tidy is an error instead of a
#                     skip (CI sets this; dev containers may lack the tool)
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

find_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "$CLANG_TIDY"
    return
  fi
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      echo "$candidate"
      return
    fi
  done
}

TIDY="$(find_tidy)"
if [[ -z "$TIDY" ]]; then
  if [[ "${RUN_TIDY_STRICT:-0}" == "1" ]]; then
    echo "error: clang-tidy not found and RUN_TIDY_STRICT=1" >&2
    exit 1
  fi
  echo "run_tidy: clang-tidy not found on PATH; SKIPPED (set RUN_TIDY_STRICT=1 to fail instead)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_tidy: generating $BUILD_DIR/compile_commands.json" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

declare -a files
if [[ "${1:-}" == "--changed" ]]; then
  base="${2:-origin/main}"
  mapfile -t files < <(git diff --name-only --diff-filter=d "$base"... -- \
                         'src/*.cc' 'src/**/*.cc')
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "run_tidy: no changed src/ sources vs $base; nothing to do"
    exit 0
  fi
elif [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

echo "run_tidy: ${TIDY} over ${#files[@]} file(s)" >&2
status=0
for f in "${files[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
done

if [[ $status -eq 0 ]]; then
  echo "run_tidy: zero clang-tidy warnings"
else
  echo "run_tidy: clang-tidy reported findings (see above)" >&2
fi
exit $status
