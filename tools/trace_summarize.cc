// Validates and summarizes a Chrome trace-event JSON file emitted by
// WriteChromeTrace (src/obs/chrome_trace.cc).
//
//   trace_summarize [--check] trace.json [more.json ...]
//
// For each file: parses the JSON with the in-repo parser, checks the
// trace-event schema invariants the exporter guarantees (every "b" has a
// matching "e", per-slot "X" events never overlap, phase args on the end
// event sum to the span duration within 1 µs), and prints a per-file
// summary. With --check, prints only PASS/FAIL lines and exits non-zero on
// the first violated invariant — the mode CI uses as a regression gate.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"

namespace {

using mimdraid::json_lite::Parse;
using mimdraid::json_lite::ParseResult;
using mimdraid::json_lite::Value;

struct Span {
  double ts = 0.0;
  double dur = 0.0;
};

struct FileStats {
  size_t events = 0;
  size_t disk_ops = 0;
  size_t requests = 0;
  size_t counters = 0;
  size_t markers = 0;
  double min_ts = 0.0;
  double max_ts = 0.0;
  bool span_valid = false;
  double sum_request_us = 0.0;
  double sum_phase_us = 0.0;
  double worst_phase_gap_us = 0.0;
  std::map<int, std::vector<Span>> slot_spans;
};

void ObserveTs(FileStats* s, double ts) {
  if (!s->span_valid) {
    s->min_ts = ts;
    s->max_ts = ts;
    s->span_valid = true;
    return;
  }
  if (ts < s->min_ts) s->min_ts = ts;
  if (ts > s->max_ts) s->max_ts = ts;
}

bool Fail(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), why.c_str());
  return false;
}

bool Summarize(const std::string& path, bool check_only) {
  std::ifstream in(path);
  if (!in) {
    return Fail(path, "cannot open");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const ParseResult parsed = Parse(buf.str());
  if (!parsed.ok) {
    char why[256];
    std::snprintf(why, sizeof(why), "JSON parse error at offset %zu: %s",
                  parsed.error_offset, parsed.error.c_str());
    return Fail(path, why);
  }
  if (!parsed.value.is_object()) {
    return Fail(path, "top-level value is not an object");
  }
  const Value* events = parsed.value.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail(path, "missing traceEvents array");
  }

  FileStats s;
  // request id -> begin timestamp; drained as "e" events match.
  std::map<double, double> open_requests;
  for (const Value& ev : events->AsArray()) {
    if (!ev.is_object()) {
      return Fail(path, "traceEvents element is not an object");
    }
    ++s.events;
    const std::string ph = ev.GetString("ph");
    if (ph.empty()) {
      return Fail(path, "event missing ph");
    }
    if (ph == "M") {
      continue;  // metadata carries no timestamp
    }
    const Value* ts_v = ev.Find("ts");
    if (ts_v == nullptr || !ts_v->is_number()) {
      return Fail(path, "non-metadata event missing numeric ts");
    }
    const double ts = ts_v->AsNumber();
    ObserveTs(&s, ts);

    if (ph == "X") {
      ++s.disk_ops;
      const double dur = ev.GetNumber("dur", -1.0);
      if (dur < 0.0) {
        return Fail(path, "X event missing dur");
      }
      ObserveTs(&s, ts + dur);
      const int slot = static_cast<int>(ev.GetNumber("tid", -1.0));
      if (slot < 0) {
        return Fail(path, "X event missing tid");
      }
      s.slot_spans[slot].push_back(Span{ts, dur});
    } else if (ph == "b") {
      const Value* id = ev.Find("id");
      if (id == nullptr || !id->is_number()) {
        return Fail(path, "b event missing id");
      }
      if (!open_requests.emplace(id->AsNumber(), ts).second) {
        return Fail(path, "duplicate open request id");
      }
    } else if (ph == "e") {
      const Value* id = ev.Find("id");
      if (id == nullptr || !id->is_number()) {
        return Fail(path, "e event missing id");
      }
      auto it = open_requests.find(id->AsNumber());
      if (it == open_requests.end()) {
        return Fail(path, "e event without matching b");
      }
      const double e2e = ts - it->second;
      open_requests.erase(it);
      ++s.requests;
      const Value* args = ev.Find("args");
      if (args == nullptr || !args->is_object()) {
        return Fail(path, "request end event missing args");
      }
      const double phase_sum =
          args->GetNumber("queue_us") + args->GetNumber("overhead_us") +
          args->GetNumber("seek_us") + args->GetNumber("rotational_us") +
          args->GetNumber("transfer_us") + args->GetNumber("recovery_us");
      const double gap = phase_sum > e2e ? phase_sum - e2e : e2e - phase_sum;
      if (gap > s.worst_phase_gap_us) {
        s.worst_phase_gap_us = gap;
      }
      s.sum_request_us += e2e;
      s.sum_phase_us += phase_sum;
    } else if (ph == "C") {
      ++s.counters;
    } else if (ph == "i") {
      ++s.markers;
    } else {
      return Fail(path, "unknown event phase '" + ph + "'");
    }
  }

  if (!open_requests.empty()) {
    char why[128];
    std::snprintf(why, sizeof(why), "%zu request spans never completed",
                  open_requests.size());
    return Fail(path, why);
  }
  // Phase-sum invariant: the exporter books recovery_us as the exact
  // residual, so any gap beyond 1 µs means broken attribution.
  if (s.worst_phase_gap_us > 1.0) {
    char why[128];
    std::snprintf(why, sizeof(why),
                  "phase sum deviates from e2e latency by %.3f µs",
                  s.worst_phase_gap_us);
    return Fail(path, why);
  }
  // Serial-per-slot invariant: SimDisk serves one command at a time, so two
  // X events on one track must not overlap (events are appended in
  // completion order, hence sorted by start within each slot).
  for (const auto& [slot, spans] : s.slot_spans) {
    for (size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].ts < spans[i - 1].ts + spans[i - 1].dur) {
        char why[128];
        std::snprintf(why, sizeof(why),
                      "slot %d has overlapping disk ops at ts %.0f", slot,
                      spans[i].ts);
        return Fail(path, why);
      }
    }
  }

  if (check_only) {
    std::printf("PASS %s: %zu events, %zu requests, %zu disk ops\n",
                path.c_str(), s.events, s.requests, s.disk_ops);
    return true;
  }

  const double span_s =
      s.span_valid ? (s.max_ts - s.min_ts) / 1e6 : 0.0;
  std::printf("%s\n", path.c_str());
  std::printf("  events        %zu (%zu disk ops, %zu requests, "
              "%zu counters, %zu markers)\n",
              s.events, s.disk_ops, s.requests, s.counters, s.markers);
  std::printf("  span          %.3f s\n", span_s);
  if (s.requests > 0) {
    std::printf("  mean latency  %.1f µs (phase sum %.1f µs, worst "
                "attribution gap %.3f µs)\n",
                s.sum_request_us / static_cast<double>(s.requests),
                s.sum_phase_us / static_cast<double>(s.requests),
                s.worst_phase_gap_us);
  }
  for (const auto& [slot, spans] : s.slot_spans) {
    double busy = 0.0;
    for (const Span& sp : spans) {
      busy += sp.dur;
    }
    std::printf("  slot %-3d      %zu ops, utilization %.1f%%\n", slot,
                spans.size(),
                span_s > 0.0 ? 100.0 * busy / (span_s * 1e6) : 0.0);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_only = true;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: %s [--check] trace.json [...]\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (const std::string& p : paths) {
    ok = Summarize(p, check_only) && ok;
  }
  return ok ? 0 : 1;
}
